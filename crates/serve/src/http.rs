//! A deliberately small HTTP/1.1 implementation on blocking sockets.
//!
//! The serving layer needs exactly four verbs of HTTP: read a request
//! line, read headers until the blank line, read `Content-Length` bytes
//! of body, write a response with a handful of headers. Everything else
//! (chunked encoding, multipart, TLS, HTTP/2) is out of scope — the
//! front door runs behind a load balancer in the deployment the paper
//! describes, and the reproduction keeps the workspace dependency-free.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Ceiling on the request line + headers, and on a request body. Both
/// exist so a malicious or broken client cannot make the server buffer
/// unbounded memory — the same principle as the bounded request queue.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// `Connection: keep-alive` semantics (HTTP/1.1 default unless the
    /// client sent `Connection: close`).
    pub keep_alive: bool,
    pub body: Vec<u8>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (including read timeouts on idle
    /// keep-alive connections — the caller closes quietly).
    Io(std::io::Error),
    /// The bytes on the wire are not an HTTP request we accept.
    BadRequest(&'static str),
    /// Head or body exceeded the fixed ceilings above.
    TooLarge,
    /// The request started arriving but did not finish within the
    /// per-request deadline — a slowloris client, or a peer that
    /// stalled mid-body. Answered with 408.
    Timeout,
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one request off the connection. `Ok(None)` means the peer
/// closed cleanly between requests (normal end of a keep-alive
/// session). No per-request deadline: total read time is bounded only
/// by the socket timeout the caller configured.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, HttpError> {
    read_request_deadline(reader, None)
}

/// Floor for re-armed socket timeouts: `set_read_timeout` rejects a
/// zero duration, and a sub-millisecond window would busy-spin.
const MIN_ARM: Duration = Duration::from_millis(1);

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Re-arm the socket read timeout with the time left until `deadline`.
/// Returns `Timeout` if the deadline has already passed.
fn arm_remaining(stream: &TcpStream, deadline: Option<Instant>) -> Result<(), HttpError> {
    if let Some(dl) = deadline {
        let remaining = dl
            .checked_duration_since(Instant::now())
            .ok_or(HttpError::Timeout)?;
        let _ = stream.set_read_timeout(Some(remaining.max(MIN_ARM)));
    }
    Ok(())
}

/// Append one `\n`-terminated line to `line` (terminator included).
///
/// Reads through `fill_buf` rather than `read_line` so the remaining
/// deadline can be re-checked between network chunks — `read_line`
/// does not return until the newline arrives, which is exactly the
/// opaqueness a slowloris client exploits. Returns `Ok(true)` when a
/// newline was seen, `Ok(false)` on EOF first.
fn read_line_deadline(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    cap: usize,
    deadline: &mut Option<Instant>,
    budget: Option<Duration>,
    started: &mut bool,
) -> Result<bool, HttpError> {
    loop {
        if *started {
            arm_remaining(reader.get_ref(), *deadline)?;
        }
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            // Before the first byte this is the caller's idle timeout
            // (quiet close); after it, with a budget, it is the
            // deadline firing.
            Err(e) if is_timeout(&e) => {
                return Err(if *started && deadline.is_some() {
                    HttpError::Timeout
                } else {
                    HttpError::Io(e)
                });
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if buf.is_empty() {
            return Ok(false);
        }
        if !*started {
            // The request clock starts at its first byte, so idle
            // keep-alive time is never charged against the budget.
            *started = true;
            *deadline = budget.map(|b| Instant::now() + b);
        }
        let nl = buf.iter().position(|&b| b == b'\n');
        let take = nl.map_or(buf.len(), |i| i + 1);
        if line.len() + take > cap {
            return Err(HttpError::TooLarge);
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if nl.is_some() {
            return Ok(true);
        }
    }
}

/// Read exactly `len` body bytes, bounded by `deadline`.
fn read_body_deadline(
    reader: &mut BufReader<TcpStream>,
    len: usize,
    deadline: Option<Instant>,
) -> Result<Vec<u8>, HttpError> {
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        arm_remaining(reader.get_ref(), deadline)?;
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::BadRequest("connection closed mid-body")),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                return Err(if deadline.is_some() {
                    HttpError::Timeout
                } else {
                    HttpError::Io(e)
                });
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(body)
}

/// Read one request, bounding the *total* time from its first byte to
/// the end of its body by `budget`.
///
/// A per-socket read timeout cannot provide this bound: a slowloris
/// client lands one byte inside every window, so each individual recv
/// succeeds while the request never completes. Here the socket timeout
/// is re-armed with the remaining budget around every read, so the
/// whole request either finishes in time or fails with
/// [`HttpError::Timeout`] (answered 408).
pub fn read_request_deadline(
    reader: &mut BufReader<TcpStream>,
    budget: Option<Duration>,
) -> Result<Option<Request>, HttpError> {
    let mut deadline = None;
    let mut started = false;

    let mut line = Vec::new();
    let saw_newline = read_line_deadline(
        reader,
        &mut line,
        MAX_HEAD_BYTES,
        &mut deadline,
        budget,
        &mut started,
    )?;
    if line.is_empty() {
        return Ok(None);
    }
    if !saw_newline {
        return Err(HttpError::BadRequest("connection closed mid-request-line"));
    }
    let mut head_bytes = line.len();
    let first = String::from_utf8_lossy(&line);
    let mut parts = first.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::BadRequest("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request path"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    let mut keep_alive = true;
    // One scratch buffer for every header line, cleared between lines.
    let mut header = Vec::new();
    loop {
        header.clear();
        let cap = MAX_HEAD_BYTES - head_bytes;
        if !read_line_deadline(
            reader,
            &mut header,
            cap,
            &mut deadline,
            budget,
            &mut started,
        )? {
            return Err(HttpError::BadRequest("connection closed mid-headers"));
        }
        head_bytes += header.len();
        let text = String::from_utf8_lossy(&header);
        let text = text.trim_end();
        if text.is_empty() {
            break;
        }
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::BadRequest("malformed header"));
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest("bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let body = read_body_deadline(reader, content_length, deadline)?;
    Ok(Some(Request {
        method,
        path,
        keep_alive,
        body,
    }))
}

/// One response, about to be written.
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers, e.g. `Retry-After` on a shed response.
    pub extra: Vec<(&'static str, String)>,
}

impl Response {
    pub fn json(status: u16, value: &serde_json::Value) -> Self {
        let body = serde_json::to_string(value)
            .unwrap_or_else(|_| "{}".to_string())
            .into_bytes();
        Self {
            status,
            content_type: "application/json",
            body,
            extra: Vec::new(),
        }
    }

    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into_bytes(),
            extra: Vec::new(),
        }
    }

    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra.push((name, value));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `resp` onto the socket. `keep_alive` controls the
/// `Connection` header the client sees.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut wire = String::with_capacity(160 + resp.body.len());
    wire.push_str(&format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    ));
    for (name, value) in &resp.extra {
        wire.push_str(name);
        wire.push_str(": ");
        wire.push_str(value);
        wire.push_str("\r\n");
    }
    wire.push_str("\r\n");
    // Head and body go out in one write: one syscall per response, and
    // no risk of the head landing in its own TCP segment.
    let mut wire = wire.into_bytes();
    wire.extend_from_slice(&resp.body);
    stream.write_all(&wire)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Run `bytes` through a real loopback socket and parse.
    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let bytes = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&bytes).expect("write");
        });
        let (stream, _) = listener.accept().expect("accept");
        let out = read_request(&mut BufReader::new(stream));
        writer.join().expect("writer");
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /rank HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd")
            .expect("parse")
            .expect("some");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/rank");
        assert!(req.keep_alive);
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn connection_close_clears_keep_alive() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("parse")
            .expect("some");
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn closed_connection_is_none() {
        assert!(parse(b"").expect("parse").is_none());
    }

    #[test]
    fn garbage_is_bad_request() {
        assert!(matches!(
            parse(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected_before_allocation() {
        let head = format!("POST /rank HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 1 << 30);
        assert!(matches!(parse(head.as_bytes()), Err(HttpError::TooLarge)));
    }

    /// A drip-fed request must hit the deadline, not hang: each byte
    /// lands within its own socket-timeout window, so only the total
    /// budget can catch it.
    #[test]
    fn slow_request_times_out_against_total_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let dripper = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            for &b in b"GET / HTTP/1.1\r\n\r\n".iter() {
                if s.write_all(&[b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let (stream, _) = listener.accept().expect("accept");
        let started = Instant::now();
        let out =
            read_request_deadline(&mut BufReader::new(stream), Some(Duration::from_millis(80)));
        assert!(matches!(out, Err(HttpError::Timeout)), "got {out:?}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "deadline did not bound the read"
        );
        dripper.join().expect("dripper");
    }

    /// A request that fits inside the budget parses exactly as without
    /// one.
    #[test]
    fn fast_request_unaffected_by_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"POST /rank HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd")
                .expect("write");
        });
        let (stream, _) = listener.accept().expect("accept");
        let req = read_request_deadline(&mut BufReader::new(stream), Some(Duration::from_secs(5)))
            .expect("parse")
            .expect("some");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"abcd");
        writer.join().expect("writer");
    }
}
