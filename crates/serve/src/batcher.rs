//! The micro-batcher: coalesce queued `/rank` requests into
//! [`ServiceHandle::rank_batch_online`] calls.
//!
//! Worker threads parse requests and *submit* jobs; one batcher thread
//! owns the ranking cadence. A job waits in a bounded queue until
//! either `max_batch` jobs have accumulated or the oldest job has
//! waited `max_wait` — then the whole batch is ranked through **one**
//! `rank_batch_online` call, which pins one snapshot and one adjuster
//! read for the entire batch. That single call is what makes torn
//! responses impossible: every document in a batch is served by exactly
//! the epoch reported back to its client.
//!
//! The batcher also *completes* each job: it renders and writes the
//! response onto the job's connection itself, instead of handing the
//! result back to the submitting worker. That removes a condvar wake
//! and a thread handoff from every request — the worker is already back
//! in `read_request` for the connection's next request (which a
//! well-behaved client only sends after this response arrives).
//!
//! The queue bound is the server's admission control: a full queue
//! rejects immediately ([`SubmitError::QueueFull`] → 503 +
//! `Retry-After`) instead of buffering unbounded work it cannot finish
//! in time. Shedding at the door costs the client one round trip;
//! queueing it would cost everyone's latency.

use crate::cache::ResultCache;
use crate::http::write_response;
use crate::metrics::{Endpoint, Metrics};
use crate::server::{render_rank_response, render_rank_response_sharded};
use ctxrank_framework::ServiceHandle;
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued rank request, carrying the connection to respond on.
pub struct RankJob {
    pub text: String,
    pub candidates: Vec<String>,
    pub enqueued: Instant,
    /// The connection's write half, shared with the owning worker (all
    /// writes go through the mutex, so response bytes never interleave).
    pub writer: Arc<Mutex<TcpStream>>,
    /// Whether the *request* asked to keep the connection open; the
    /// batcher additionally closes when the server is draining.
    pub keep_alive: bool,
    /// [`crate::cache::query_hash`] of (text, candidates), computed by
    /// the worker that already probed the cache and missed. `None` when
    /// the cache is disabled. The batcher uses it to insert the
    /// rendered body under the epoch that ranked it.
    pub query_hash: Option<u64>,
}

struct Queue {
    jobs: VecDeque<RankJob>,
    shutting: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signals the batcher thread that jobs arrived (or shutdown).
    nonempty: Condvar,
}

/// Why a submit was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — shed with 503 + `Retry-After`.
    QueueFull,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
}

/// Handle to the batcher: submit side for workers, lifecycle for the
/// server. Shared behind `Arc`, so shutdown takes `&self` and joins the
/// thread exactly once.
pub struct Batcher {
    shared: Arc<Shared>,
    capacity: usize,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    /// Spawn the batcher thread. `capacity` bounds the pending-job
    /// queue; `max_batch`/`max_wait` shape the coalescing window.
    pub fn start(
        handle: Arc<ServiceHandle>,
        metrics: Arc<Metrics>,
        cache: Option<Arc<ResultCache>>,
        capacity: usize,
        max_batch: usize,
        max_wait: Duration,
        shard_mode: bool,
    ) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutting: false,
            }),
            nonempty: Condvar::new(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ctxrank-batcher".into())
                .spawn(move || {
                    run_batcher(
                        &shared,
                        &handle,
                        &metrics,
                        cache.as_deref(),
                        max_batch.max(1),
                        max_wait,
                        shard_mode,
                    )
                })
                .expect("spawn batcher thread")
        };
        Self {
            shared,
            capacity: capacity.max(1),
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Enqueue one rank request for batched completion. On success the
    /// batcher owns the job end-to-end: it will rank it and write the
    /// response onto `job.writer`. On refusal the caller still owns the
    /// connection and writes the 503 itself.
    pub fn submit(&self, metrics: &Metrics, job: RankJob) -> Result<(), SubmitError> {
        let mut q = self.shared.queue.lock().expect("batcher queue poisoned");
        if q.shutting {
            return Err(SubmitError::ShuttingDown);
        }
        if q.jobs.len() >= self.capacity {
            return Err(SubmitError::QueueFull);
        }
        q.jobs.push_back(job);
        metrics.set_queue_depth(q.jobs.len());
        // Only the batcher thread ever waits on this condvar.
        self.shared.nonempty.notify_one();
        Ok(())
    }

    /// Stop admitting work, rank everything already queued (their
    /// responses still go out — that is the drain guarantee), then join
    /// the batcher thread. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock().expect("batcher queue poisoned");
            q.shutting = true;
            self.shared.nonempty.notify_all();
        }
        let joined = self.thread.lock().expect("batcher join lock").take();
        if let Some(t) = joined {
            t.join().expect("batcher thread panicked");
        }
    }
}

fn run_batcher(
    shared: &Shared,
    handle: &ServiceHandle,
    metrics: &Metrics,
    cache: Option<&ResultCache>,
    max_batch: usize,
    max_wait: Duration,
    shard_mode: bool,
) {
    loop {
        let (batch, draining): (Vec<RankJob>, bool) = {
            let mut q = shared.queue.lock().expect("batcher queue poisoned");
            while q.jobs.is_empty() && !q.shutting {
                q = shared.nonempty.wait(q).expect("batcher queue poisoned");
            }
            if q.jobs.is_empty() && q.shutting {
                return;
            }
            // Coalescing window: hold until the batch fills or the
            // oldest job has waited max_wait. During drain, rank
            // immediately — latency no longer buys batching.
            while q.jobs.len() < max_batch && !q.shutting {
                let oldest = q.jobs.front().expect("nonempty").enqueued;
                let Some(remaining) = max_wait.checked_sub(oldest.elapsed()) else {
                    break;
                };
                if remaining.is_zero() {
                    break;
                }
                let (guard, _) = shared
                    .nonempty
                    .wait_timeout(q, remaining)
                    .expect("batcher queue poisoned");
                q = guard;
            }
            let take = q.jobs.len().min(max_batch);
            let batch = q.jobs.drain(..take).collect();
            metrics.set_queue_depth(q.jobs.len());
            (batch, q.shutting)
        };

        // Dispatch point: everything from here on is ranking, not
        // queueing — attribute the wait so SLO misses can be blamed on
        // the right stage.
        for job in &batch {
            metrics.record_queue_wait(job.enqueued.elapsed().as_secs_f64());
        }

        let docs: Vec<(&str, &[String])> = batch
            .iter()
            .map(|j| (j.text.as_str(), j.candidates.as_slice()))
            .collect();
        // One call, one snapshot, one adjuster read — for every job in
        // the batch. Shard mode needs the pinned snapshot itself (not
        // just its epoch) so the "owned" flags are computed against
        // exactly the snapshot that ranked the batch.
        let (snapshot, results) = handle.rank_batch_online_pinned(&docs);
        let epoch = snapshot.epoch();
        metrics.record_batch(batch.len());
        for (job, ranked) in batch.into_iter().zip(results) {
            let resp = if shard_mode {
                render_rank_response_sharded(&snapshot, &ranked)
            } else {
                render_rank_response(epoch, &ranked)
            };
            // Cache the rendered body under the epoch that *ranked* it
            // — the only epoch this body can ever be served for, which
            // is the whole no-stale-reads argument.
            if let (Some(cache), Some(qhash)) = (cache, job.query_hash) {
                cache.insert(epoch, qhash, Arc::from(resp.body.as_slice()), metrics);
            }
            let keep_alive = job.keep_alive && !draining;
            // Record before writing: once the response is on the wire
            // the client may immediately scrape /metrics and must see
            // this request counted.
            metrics.record_request(Endpoint::Rank, job.enqueued.elapsed().as_secs_f64());
            let mut writer = job.writer.lock().expect("conn writer poisoned");
            let _ = write_response(&mut writer, &resp, keep_alive);
        }
    }
}
