//! The front door: acceptor, bounded connection queue, worker pool,
//! request dispatch, graceful shutdown.
//!
//! ```text
//!            ┌───────────┐  bounded conn   ┌──────────────┐
//!  clients ─▶│ acceptor  │──── queue ─────▶│ worker pool  │──▶ /healthz /metrics /annotate
//!            │ (1 thread)│  full? 503+shed │ (N threads)  │──┐
//!            └───────────┘                 └──────────────┘  │ /rank
//!                                                            ▼
//!                                          bounded job  ┌──────────┐  rank_batch_online
//!                                          queue ──────▶│ batcher  │────▶ one snapshot,
//!                                          full? 503    │ (1 thread)     one epoch/batch
//!                                                       └──────────┘
//! ```
//!
//! Both queues are bounded; once either fills, the server sheds with
//! `503` + `Retry-After` instead of growing memory — admission control
//! at the door, as in any serving stack sized for peak. Worker count
//! follows `ctxrank_parallel::num_threads()` (the `CTXRANK_THREADS`
//! override), the same plumbing every parallel path in the workspace
//! uses.

use crate::batcher::{Batcher, RankJob, SubmitError};
use crate::cache::{query_hash, ResultCache};
use crate::http::{read_request_deadline, write_response, HttpError, Request, Response};
use crate::metrics::{Endpoint, Metrics};
use ctxrank_framework::partition::{EpochBarrier, ShardBounds};
use ctxrank_framework::{load_snapshot, ServiceHandle};
use serde_json::json;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs. `Default` is sized for a small box; every field exists
/// so tests can force the interesting regimes (tiny queues for
/// shedding, batch size 1 for the unbatched baseline).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads. 0 means `ctxrank_parallel::num_threads()`.
    pub workers: usize,
    /// Bound on accepted-but-unserviced connections.
    pub conn_backlog: usize,
    /// Bound on rank jobs queued in the micro-batcher.
    pub queue_capacity: usize,
    /// Micro-batch size cap fed to `rank_batch_online`.
    pub batch_max_size: usize,
    /// How long the batcher holds an underfull batch open.
    pub batch_max_wait: Duration,
    /// `Retry-After` seconds advertised on shed responses.
    pub retry_after_secs: u32,
    /// Idle keep-alive read timeout before a worker drops a connection.
    pub keep_alive_timeout: Duration,
    /// Total time a request may take from its first byte to the end of
    /// its body. This — not the socket timeout — is what stops a
    /// slowloris client: each dripped byte lands inside its own socket
    /// window, but the sum cannot exceed this deadline. Exceeding it
    /// answers 408 and closes.
    pub request_deadline: Duration,
    /// Expose `POST /admin/shutdown` (used by the demo binary and CI to
    /// stop the server without signals).
    pub enable_shutdown_endpoint: bool,
    /// Byte budget for the epoch-keyed result cache. 0 disables the
    /// cache entirely (every `/rank` goes through the batcher), which
    /// is the default so batching benchmarks and the PR 4 test suite
    /// keep measuring the ranker, not the cache. `serve_demo`, the
    /// open-loop bench and production configs turn it on.
    pub cache_capacity_bytes: usize,
    /// Mutex stripes in the result cache (contention control; the byte
    /// budget is split evenly across shards).
    pub cache_shards: usize,
    /// Serve one partition of a sharded snapshot. Publishes the bounds
    /// in `/healthz` and adds an `"owned"` flag to every `/rank` result
    /// so the scatter-gather router can keep each candidate's owning
    /// shard's entry and discard the rest.
    pub shard: Option<ShardBounds>,
    /// Expose `POST /admin/epoch/{prepare,commit,abort}` — the shard
    /// side of the two-phase publish barrier. Off by default: prepare
    /// loads a snapshot from a caller-named local directory, which only
    /// a deployment that runs the barrier should expose.
    pub enable_epoch_admin: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            conn_backlog: 256,
            queue_capacity: 1024,
            batch_max_size: 16,
            batch_max_wait: Duration::from_micros(500),
            retry_after_secs: 1,
            keep_alive_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(10),
            enable_shutdown_endpoint: false,
            cache_capacity_bytes: 0,
            cache_shards: 16,
            shard: None,
            enable_epoch_admin: false,
        }
    }
}

impl ServeConfig {
    /// `self` with the result cache enabled at `capacity_bytes`.
    pub fn with_cache(mut self, capacity_bytes: usize) -> Self {
        self.cache_capacity_bytes = capacity_bytes;
        self
    }

    /// `self` configured as one shard of a partition: bounds published,
    /// owned flags rendered, epoch barrier admin endpoints enabled.
    pub fn as_shard(mut self, bounds: ShardBounds) -> Self {
        self.shard = Some(bounds);
        self.enable_epoch_admin = true;
        self
    }
}

struct Inner {
    handle: Arc<ServiceHandle>,
    metrics: Arc<Metrics>,
    /// Epoch-keyed result cache, `None` when disabled. Probed by
    /// workers before submitting to the batcher; filled by the batcher
    /// with rendered bodies.
    cache: Option<Arc<ResultCache>>,
    config: ServeConfig,
    /// Two-phase publish staging (`/admin/epoch/*`); idle unless
    /// `enable_epoch_admin` routes to it.
    barrier: EpochBarrier,
    conns: Mutex<VecDeque<TcpStream>>,
    conns_nonempty: Condvar,
    shutting: AtomicBool,
    /// Set by `POST /admin/shutdown`; `wait_for_shutdown_request` blocks
    /// on it.
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// aborts the threads unjoined; call `shutdown` for a graceful drain.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    batcher: Arc<Batcher>,
}

impl Server {
    /// Bind, spawn the acceptor + worker pool + batcher, and start
    /// serving `handle`. Returns as soon as the listener is live.
    pub fn start(handle: Arc<ServiceHandle>, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::default());
        let workers = if config.workers == 0 {
            ctxrank_parallel::num_threads()
        } else {
            config.workers
        };

        let cache = (config.cache_capacity_bytes > 0).then(|| {
            Arc::new(ResultCache::new(
                config.cache_capacity_bytes,
                config.cache_shards,
            ))
        });

        let batcher = Arc::new(Batcher::start(
            Arc::clone(&handle),
            Arc::clone(&metrics),
            cache.clone(),
            config.queue_capacity,
            config.batch_max_size,
            config.batch_max_wait,
            config.shard.is_some(),
        ));

        let inner = Arc::new(Inner {
            handle,
            metrics,
            cache,
            config,
            barrier: EpochBarrier::new(),
            conns: Mutex::new(VecDeque::new()),
            conns_nonempty: Condvar::new(),
            shutting: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ctxrank-acceptor".into())
                .spawn(move || run_acceptor(&inner, listener))
                .expect("spawn acceptor")
        };

        let workers = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let batcher = Arc::clone(&batcher);
                std::thread::Builder::new()
                    .name(format!("ctxrank-worker-{i}"))
                    .spawn(move || run_worker(&inner, &batcher))
                    .expect("spawn worker")
            })
            .collect();

        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers,
            batcher,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metric registry (scraped by `/metrics`; also handy in
    /// tests/benches).
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Block until a client calls `POST /admin/shutdown` (requires
    /// `enable_shutdown_endpoint`).
    pub fn wait_for_shutdown_request(&self) {
        let mut requested = self
            .inner
            .shutdown_requested
            .lock()
            .expect("shutdown flag poisoned");
        while !*requested {
            requested = self
                .inner
                .shutdown_cv
                .wait(requested)
                .expect("shutdown flag poisoned");
        }
    }

    /// Graceful drain: stop accepting, let workers finish queued
    /// connections and in-flight requests, rank everything already in
    /// the batcher, join all threads.
    pub fn shutdown(mut self) {
        self.inner.shutting.store(true, Ordering::Release);
        // Wake the acceptor out of `accept()` with a throwaway
        // connection; it checks the flag before handling it.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.acceptor.take() {
            t.join().expect("acceptor panicked");
        }
        // Workers drain the connection queue, then exit.
        self.inner.conns_nonempty.notify_all();
        for t in self.workers.drain(..) {
            t.join().expect("worker panicked");
        }
        // No submitters remain; drain the batcher's queue and join it.
        self.batcher.shutdown();
    }
}

fn run_acceptor(inner: &Inner, listener: TcpListener) {
    for conn in listener.incoming() {
        if inner.shutting.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let mut q = inner.conns.lock().expect("conn queue poisoned");
        if q.len() >= inner.config.conn_backlog {
            drop(q);
            inner.metrics.record_shed();
            shed_connection(stream, inner.config.retry_after_secs);
            continue;
        }
        q.push_back(stream);
        inner.conns_nonempty.notify_one();
    }
}

/// Refuse a connection at the door: one 503 with `Retry-After`, close.
fn shed_connection(mut stream: TcpStream, retry_after_secs: u32) {
    let resp = Response::json(503, &json!({"error": "overloaded"}))
        .with_header("retry-after", retry_after_secs.to_string());
    let _ = write_response(&mut stream, &resp, false);
}

fn run_worker(inner: &Inner, batcher: &Batcher) {
    loop {
        let stream = {
            let mut q = inner.conns.lock().expect("conn queue poisoned");
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if inner.shutting.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) = inner
                    .conns_nonempty
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("conn queue poisoned");
                q = guard;
            }
        };
        match stream {
            Some(s) => serve_connection(inner, batcher, s),
            None => return,
        }
    }
}

fn serve_connection(inner: &Inner, batcher: &Batcher, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // The write half is shared with the batcher, which writes `/rank`
    // responses directly (see batcher.rs); the mutex keeps worker and
    // batcher response bytes from ever interleaving on the wire.
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let write = |resp: &Response, keep_alive: bool| {
        let mut w = writer.lock().expect("conn writer poisoned");
        write_response(&mut w, resp, keep_alive)
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Reset the idle timeout every iteration: the deadline logic
        // inside `read_request_deadline` re-arms the socket timeout
        // with the shrinking remaining budget, so the previous
        // request's leftover value must not leak into this one.
        let _ = reader
            .get_ref()
            .set_read_timeout(Some(inner.config.keep_alive_timeout));
        let req = match read_request_deadline(&mut reader, Some(inner.config.request_deadline)) {
            Ok(Some(req)) => req,
            // Peer closed between requests — normal keep-alive end.
            Ok(None) => return,
            Err(HttpError::Io(e)) => {
                // An idle keep-alive timeout is routine; a transport
                // error mid-stream (reset, truncated send) is worth
                // counting.
                if !matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    inner.metrics.record_io_error();
                }
                return;
            }
            Err(HttpError::Timeout) => {
                inner.metrics.record_timeout();
                inner.metrics.record_request(Endpoint::Other, 0.0);
                let resp = Response::json(408, &json!({"error": "request timed out"}));
                let _ = write(&resp, false);
                return;
            }
            Err(HttpError::BadRequest(detail)) => {
                inner.metrics.record_request(Endpoint::Other, 0.0);
                let _ = write(&Response::json(400, &json!({"error": detail})), false);
                return;
            }
            Err(HttpError::TooLarge) => {
                inner.metrics.record_request(Endpoint::Other, 0.0);
                let resp = Response::json(413, &json!({"error": "request too large"}));
                let _ = write(&resp, false);
                return;
            }
        };
        let start = Instant::now();
        // During drain, finish this response but do not keep the
        // connection open for more.
        let keep_alive = req.keep_alive && !inner.shutting.load(Ordering::Acquire);

        // `/rank` hands the connection to the batcher: the response is
        // rendered and written by the batcher thread once the batch
        // completes. The worker goes straight back to `read_request` —
        // a well-behaved client will not send its next request until
        // the rank response arrives. (HTTP/1.1 pipelining of /rank with
        // other endpoints is not supported; bytes still never tear
        // because every write holds the connection's writer mutex.)
        if req.method == "POST" && req.path == "/rank" {
            match parse_rank_body(&req.body) {
                Err(detail) => {
                    inner
                        .metrics
                        .record_request(Endpoint::Rank, start.elapsed().as_secs_f64());
                    let resp = Response::json(400, &json!({"error": detail}));
                    if write(&resp, keep_alive).is_err() || !keep_alive {
                        return;
                    }
                }
                Ok((text, candidates)) => {
                    // Probe the epoch-keyed cache before the batcher: a
                    // hit answers on the worker thread with the body
                    // the ranker rendered for this exact (epoch,
                    // query) — zero batcher, zero ranker work. The
                    // epoch read is one atomic load; because it is part
                    // of the key, a publish landing between the read
                    // and the write cannot produce a stale pairing
                    // (the body was rendered by the epoch it claims).
                    let qhash = inner.cache.as_ref().map(|_| query_hash(&text, &candidates));
                    if let (Some(cache), Some(qhash)) = (inner.cache.as_ref(), qhash) {
                        if let Some(body) = cache.get(inner.handle.epoch(), qhash, &inner.metrics) {
                            inner
                                .metrics
                                .record_request(Endpoint::Rank, start.elapsed().as_secs_f64());
                            let resp = Response {
                                status: 200,
                                content_type: "application/json",
                                body: body.to_vec(),
                                extra: Vec::new(),
                            };
                            if write(&resp, keep_alive).is_err() || !keep_alive {
                                return;
                            }
                            continue;
                        }
                    }
                    let job = RankJob {
                        text,
                        candidates,
                        enqueued: start,
                        writer: Arc::clone(&writer),
                        keep_alive,
                        query_hash: qhash,
                    };
                    match batcher.submit(&inner.metrics, job) {
                        // The batcher owns the response now (and the
                        // request metric, recorded when it writes). If
                        // the connection is not staying open, just drop
                        // the read half; the socket closes fully once
                        // the batcher's write half goes too.
                        Ok(()) => {
                            if !keep_alive {
                                return;
                            }
                        }
                        Err(err) => {
                            inner.metrics.record_shed();
                            inner
                                .metrics
                                .record_request(Endpoint::Rank, start.elapsed().as_secs_f64());
                            let detail = match err {
                                SubmitError::QueueFull => "rank queue full",
                                SubmitError::ShuttingDown => "shutting down",
                            };
                            let resp = Response::json(503, &json!({"error": detail})).with_header(
                                "retry-after",
                                inner.config.retry_after_secs.to_string(),
                            );
                            if write(&resp, keep_alive).is_err() || !keep_alive {
                                return;
                            }
                        }
                    }
                }
            }
            continue;
        }

        let (endpoint, resp) = dispatch(inner, &req);
        inner
            .metrics
            .record_request(endpoint, start.elapsed().as_secs_f64());
        if write(&resp, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

fn dispatch(inner: &Inner, req: &Request) -> (Endpoint, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let mut health = json!({
                "status": "ok",
                "epoch": inner.handle.epoch(),
                "queue_depth": inner.metrics.queue_depth(),
            });
            // Shard mode publishes the partition bounds and barrier
            // state so the router (and operators) can see what this
            // process owns and whether a publish is in flight.
            if let (serde_json::Value::Map(entries), Some(bounds)) =
                (&mut health, inner.config.shard)
            {
                entries.push(("shard".to_string(), json!(bounds.shard)));
                entries.push(("shards".to_string(), json!(bounds.shards)));
                entries.push(("tid_lo".to_string(), json!(bounds.tid_lo)));
                entries.push(("tid_hi".to_string(), json!(bounds.tid_hi)));
                entries.push((
                    "staged_epoch".to_string(),
                    match inner.barrier.staged_epoch() {
                        Some(e) => json!(e),
                        None => serde_json::Value::Null,
                    },
                ));
            }
            (Endpoint::Healthz, Response::json(200, &health))
        }
        ("GET", "/metrics") => {
            // Refresh the propensity-coverage gauge from the live
            // handle so a scrape always reflects the installed table.
            inner
                .metrics
                .set_propensity_ranks(inner.handle.propensity_ranks() as u64);
            let text = inner.metrics.render_prometheus(inner.handle.epoch());
            (Endpoint::Metrics, Response::text(200, text))
        }
        ("POST", "/annotate") => (Endpoint::Annotate, handle_annotate(inner, &req.body)),
        ("POST", "/feedback") => (Endpoint::Feedback, handle_feedback(inner, &req.body)),
        // The shard side of the two-phase publish. Prepare loads epoch
        // E+1 from a directory into barrier staging without touching
        // traffic; commit flips it into the SwapCell atomically; abort
        // drops a staging. A driver brings every shard through prepare
        // before any commit, so the mixed-epoch window collapses to the
        // commit fan-out (which the router retries across).
        ("POST", "/admin/epoch/prepare") if inner.config.enable_epoch_admin => {
            (Endpoint::Other, handle_epoch_prepare(inner, &req.body))
        }
        ("POST", "/admin/epoch/commit") if inner.config.enable_epoch_admin => {
            (Endpoint::Other, handle_epoch_commit(inner, &req.body))
        }
        ("POST", "/admin/epoch/abort") if inner.config.enable_epoch_admin => {
            let aborted = inner.barrier.abort();
            let resp = Response::json(
                200,
                &json!({
                    "aborted": match aborted {
                        Some(e) => json!(e),
                        None => serde_json::Value::Null,
                    },
                }),
            );
            (Endpoint::Other, resp)
        }
        ("POST", "/admin/shutdown") if inner.config.enable_shutdown_endpoint => {
            let mut requested = inner
                .shutdown_requested
                .lock()
                .expect("shutdown flag poisoned");
            *requested = true;
            inner.shutdown_cv.notify_all();
            (
                Endpoint::Other,
                Response::json(200, &json!({"status": "shutting down"})),
            )
        }
        ("GET" | "POST", _) => (
            Endpoint::Other,
            Response::json(404, &json!({"error": "no such endpoint"})),
        ),
        _ => (
            Endpoint::Other,
            Response::json(405, &json!({"error": "method not allowed"})),
        ),
    }
}

/// `POST /admin/epoch/prepare {"dir": ..., "epoch": E}` — load the
/// staged snapshot from `dir` and hold it in the barrier. The epoch in
/// the body is a cross-check against the artifact on disk: a driver
/// that points a shard at the wrong directory finds out here, not at
/// commit.
fn handle_epoch_prepare(inner: &Inner, body: &[u8]) -> Response {
    let value: serde_json::Value = match serde_json::from_slice(body) {
        Ok(v) => v,
        Err(_) => return Response::json(400, &json!({"error": "body is not valid JSON"})),
    };
    let Some(dir) = value.get("dir").and_then(|d| d.as_str()) else {
        return Response::json(400, &json!({"error": "missing string field \"dir\""}));
    };
    let Some(epoch) = value.get("epoch").and_then(|e| e.as_u64()) else {
        return Response::json(400, &json!({"error": "missing integer field \"epoch\""}));
    };
    let staged = match load_snapshot(std::path::Path::new(dir)) {
        Ok(s) => s,
        Err(e) => {
            return Response::json(409, &json!({"error": format!("load failed: {e}")}));
        }
    };
    if staged.epoch() != epoch {
        return Response::json(
            409,
            &json!({
                "error": format!(
                    "artifact in {dir} is epoch {}, prepare named {epoch}",
                    staged.epoch()
                ),
            }),
        );
    }
    match inner.barrier.prepare(staged, inner.handle.epoch()) {
        Ok(e) => Response::json(200, &json!({"staged": e})),
        Err(e) => Response::json(409, &json!({"error": e.to_string()})),
    }
}

/// `POST /admin/epoch/commit {"epoch": E}` — atomically flip the staged
/// snapshot into the serving `SwapCell`.
fn handle_epoch_commit(inner: &Inner, body: &[u8]) -> Response {
    let value: serde_json::Value = match serde_json::from_slice(body) {
        Ok(v) => v,
        Err(_) => return Response::json(400, &json!({"error": "body is not valid JSON"})),
    };
    let Some(epoch) = value.get("epoch").and_then(|e| e.as_u64()) else {
        return Response::json(400, &json!({"error": "missing integer field \"epoch\""}));
    };
    match inner.barrier.commit(epoch) {
        Ok(snapshot) => {
            let epoch = inner.handle.publish(snapshot);
            Response::json(200, &json!({"status": "committed", "epoch": epoch}))
        }
        Err(e) => Response::json(409, &json!({"error": e.to_string()})),
    }
}

/// Append `s` as a JSON string literal, escaping per RFC 8259.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite float (model scores are always finite; a NaN from a
/// future bug degrades to `null` rather than invalid JSON).
fn push_json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&x.to_string());
    } else {
        out.push_str("null");
    }
}

/// Parse `{"text": ..., "candidates": [...]}`. Consumes the parsed
/// tree and moves its strings out instead of cloning them — the text
/// field is the whole document.
fn parse_rank_body(body: &[u8]) -> Result<(String, Vec<String>), &'static str> {
    let value: serde_json::Value =
        serde_json::from_slice(body).map_err(|_| "body is not valid JSON")?;
    let serde_json::Value::Map(entries) = value else {
        return Err("body must be a JSON object");
    };
    let mut text = None;
    let mut candidates = Vec::new();
    for (key, val) in entries {
        match key.as_str() {
            "text" => match val {
                serde_json::Value::Str(s) => text = Some(s),
                _ => return Err("missing string field \"text\""),
            },
            "candidates" => match val {
                serde_json::Value::Seq(items) => {
                    candidates.reserve(items.len());
                    for item in items {
                        match item {
                            serde_json::Value::Str(s) => candidates.push(s),
                            _ => return Err("\"candidates\" must be an array of strings"),
                        }
                    }
                }
                _ => return Err("\"candidates\" must be an array of strings"),
            },
            _ => {}
        }
    }
    let text = text.ok_or("missing string field \"text\"")?;
    Ok((text, candidates))
}

/// Render a `/rank` success response. Serialized by hand: this is the
/// hot path, and a `json!` value tree costs dozens of small
/// allocations per response. Called from the batcher thread. Public so
/// the scatter-gather router can re-render a merged result list with
/// byte-identical formatting (`f64::to_string` both ways), which is
/// what makes the merged body bit-equal to the unsharded server's.
pub fn render_rank_response(epoch: u64, ranked: &[ctxrank_framework::RankedConcept]) -> Response {
    render_rank(epoch, ranked, None)
}

/// Shard-mode render: every result additionally carries
/// `"owned": true|false` — whether this shard's snapshot stores the
/// candidate. The router keeps owned entries (exactly one shard owns
/// each stored concept) and deduplicates unowned ones, then re-renders
/// through [`render_rank_response`] so the flags never reach clients.
pub fn render_rank_response_sharded(
    snapshot: &ctxrank_framework::Snapshot,
    ranked: &[ctxrank_framework::RankedConcept],
) -> Response {
    render_rank(snapshot.epoch(), ranked, Some(snapshot))
}

fn render_rank(
    epoch: u64,
    ranked: &[ctxrank_framework::RankedConcept],
    owned_by: Option<&ctxrank_framework::Snapshot>,
) -> Response {
    let mut body = String::with_capacity(40 + ranked.len() * 72);
    body.push_str("{\"epoch\":");
    body.push_str(&epoch.to_string());
    body.push_str(",\"results\":[");
    for (i, r) in ranked.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"surface\":");
        push_json_str(&mut body, &r.surface);
        body.push_str(",\"score\":");
        push_json_f64(&mut body, r.score);
        body.push_str(",\"relevance\":");
        push_json_f64(&mut body, r.relevance);
        if let Some(snapshot) = owned_by {
            body.push_str(",\"owned\":");
            body.push_str(if snapshot.contains_concept(&r.surface) {
                "true"
            } else {
                "false"
            });
        }
        body.push('}');
    }
    body.push_str("]}");
    Response {
        status: 200,
        content_type: "application/json",
        body: body.into_bytes(),
        extra: Vec::new(),
    }
}

/// `POST /feedback {"surface": ..., "views": N, "clicks": N, "rank": R?}`
/// — fold one observed impression batch into the live §VIII online
/// adjuster. With `"rank"` the clicks are reweighted by the installed
/// clipped inverse-propensity table (a no-op weight of 1.0 when no
/// table is installed); without it the batch takes the naive
/// rank-agnostic path. The response echoes whether the ranked path was
/// taken so callers can tell which estimator absorbed the evidence.
fn handle_feedback(inner: &Inner, body: &[u8]) -> Response {
    let value: serde_json::Value = match serde_json::from_slice(body) {
        Ok(v) => v,
        Err(_) => return Response::json(400, &json!({"error": "body is not valid JSON"})),
    };
    let Some(surface) = value.get("surface").and_then(|s| s.as_str()) else {
        return Response::json(400, &json!({"error": "missing string field \"surface\""}));
    };
    let Some(views) = value.get("views").and_then(|v| v.as_u64()) else {
        return Response::json(400, &json!({"error": "missing integer field \"views\""}));
    };
    let Some(clicks) = value.get("clicks").and_then(|c| c.as_u64()) else {
        return Response::json(400, &json!({"error": "missing integer field \"clicks\""}));
    };
    if clicks > views {
        return Response::json(
            400,
            &json!({"error": "\"clicks\" must not exceed \"views\""}),
        );
    }
    let rank = match value.get("rank") {
        None | Some(serde_json::Value::Null) => None,
        Some(r) => match r.as_u64() {
            Some(r) => Some(r as usize),
            None => {
                return Response::json(400, &json!({"error": "\"rank\" must be an integer"}));
            }
        },
    };
    match rank {
        Some(rank) => inner
            .handle
            .record_feedback_ranked(surface, rank, views, clicks),
        None => inner.handle.record_feedback(surface, views, clicks),
    }
    inner.metrics.record_feedback();
    Response::json(
        200,
        &json!({
            "status": "recorded",
            "ranked": rank.is_some(),
            "propensity_ranks": inner.handle.propensity_ranks(),
        }),
    )
}

/// The Stemmer/context component of Figure 4 over the wire: the
/// document's stemmed terms plus how many resolve to snapshot-known
/// TIDs. Pinned to one snapshot like every other response.
fn handle_annotate(inner: &Inner, body: &[u8]) -> Response {
    let value: serde_json::Value = match serde_json::from_slice(body) {
        Ok(v) => v,
        Err(_) => return Response::json(400, &json!({"error": "body is not valid JSON"})),
    };
    let Some(text) = value.get("text").and_then(|t| t.as_str()) else {
        return Response::json(400, &json!({"error": "missing string field \"text\""}));
    };
    let ranker = inner.handle.ranker();
    let terms = ranker.stem_document(text);
    let context_terms = ranker.context_tids_cached(text).len();
    Response::json(
        200,
        &json!({
            "epoch": ranker.epoch(),
            "terms": terms,
            "context_terms": context_terms,
        }),
    )
}
