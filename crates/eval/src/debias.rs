//! Scoring for the position-bias debiasing experiment.
//!
//! The experiment ranks each story's surfaces twice — once by the naive
//! §VIII adjuster's CTR estimates, once by the inverse-propensity-
//! weighted adjuster's — and scores both against the ground-truth
//! attractiveness with the paper's golden NDCG (CTR-bucket gains,
//! Eq. 6). This module reduces the per-story NDCG pairs to a verdict:
//! the exact binomial sign test over the paired differences, mapped to
//! [`DebiasVerdict`]. The CI gate demands `Win` on PBM-biased logs and
//! `Tie` on unbiased ones.

use crate::significance::{paired_sign_test, SignTestOutcome};

/// What the sign test says about treatment (IPW) vs control (naive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebiasVerdict {
    /// Treatment significantly better (p < alpha, more wins).
    Win,
    /// No significant difference (p >= alpha, or a dead heat).
    Tie,
    /// Treatment significantly worse (p < alpha, fewer wins).
    Loss,
}

impl DebiasVerdict {
    /// Lowercase label for JSON reports (`"win"` / `"tie"` / `"loss"`).
    pub fn label(&self) -> &'static str {
        match self {
            DebiasVerdict::Win => "win",
            DebiasVerdict::Tie => "tie",
            DebiasVerdict::Loss => "loss",
        }
    }
}

/// Aggregated outcome of a treatment-vs-control NDCG comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DebiasOutcome {
    /// Mean NDCG of the treatment (IPW) ranking.
    pub mean_ndcg_treatment: f64,
    /// Mean NDCG of the control (naive) ranking.
    pub mean_ndcg_control: f64,
    /// Per-story sign-test tally (`wins_a` = treatment wins).
    pub sign_test: SignTestOutcome,
    /// The significance threshold the verdict was taken at.
    pub alpha: f64,
    /// The verdict at `alpha`.
    pub verdict: DebiasVerdict,
}

/// Score paired per-story NDCG values `(treatment, control)` with the
/// exact sign test at significance level `alpha`.
pub fn debias_outcome(pairs: &[(f64, f64)], alpha: f64) -> DebiasOutcome {
    let deltas: Vec<f64> = pairs.iter().map(|&(t, c)| t - c).collect();
    let sign_test = paired_sign_test(&deltas);
    let n = pairs.len().max(1) as f64;
    let mean_ndcg_treatment = pairs.iter().map(|&(t, _)| t).sum::<f64>() / n;
    let mean_ndcg_control = pairs.iter().map(|&(_, c)| c).sum::<f64>() / n;
    let verdict = if sign_test.p_value < alpha {
        if sign_test.wins_a > sign_test.wins_b {
            DebiasVerdict::Win
        } else {
            DebiasVerdict::Loss
        }
    } else {
        DebiasVerdict::Tie
    };
    DebiasOutcome {
        mean_ndcg_treatment,
        mean_ndcg_control,
        sign_test,
        alpha,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overwhelming_treatment_advantage_is_a_win() {
        let pairs: Vec<(f64, f64)> = (0..40).map(|_| (0.9, 0.6)).collect();
        let out = debias_outcome(&pairs, 0.05);
        assert_eq!(out.verdict, DebiasVerdict::Win);
        assert_eq!(out.sign_test.wins_a, 40);
        assert_eq!(out.sign_test.wins_b, 0);
        assert!(out.sign_test.p_value < 1e-9);
        assert!((out.mean_ndcg_treatment - 0.9).abs() < 1e-12);
        assert!((out.mean_ndcg_control - 0.6).abs() < 1e-12);
    }

    #[test]
    fn symmetric_outcomes_tie() {
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for i in 0..30 {
            if i % 2 == 0 {
                pairs.push((0.8, 0.7));
            } else {
                pairs.push((0.7, 0.8));
            }
        }
        // And plenty of exact ties, which the sign test drops.
        for _ in 0..50 {
            pairs.push((0.75, 0.75));
        }
        let out = debias_outcome(&pairs, 0.05);
        assert_eq!(out.verdict, DebiasVerdict::Tie);
        assert_eq!(out.sign_test.ties, 50);
        assert!(out.sign_test.p_value >= 0.05);
    }

    #[test]
    fn overwhelming_control_advantage_is_a_loss() {
        let pairs: Vec<(f64, f64)> = (0..40).map(|_| (0.5, 0.95)).collect();
        let out = debias_outcome(&pairs, 0.05);
        assert_eq!(out.verdict, DebiasVerdict::Loss);
        assert_eq!(out.verdict.label(), "loss");
    }

    #[test]
    fn empty_input_is_a_trivial_tie() {
        let out = debias_outcome(&[], 0.05);
        assert_eq!(out.verdict, DebiasVerdict::Tie);
        assert_eq!(out.sign_test.p_value, 1.0);
        assert_eq!(out.mean_ndcg_treatment, 0.0);
    }

    #[test]
    fn verdict_tracks_alpha() {
        // 8 wins vs 1 loss: p ≈ 0.039 — a win at 0.05, a tie at 0.01.
        let mut pairs: Vec<(f64, f64)> = (0..8).map(|_| (0.9, 0.8)).collect();
        pairs.push((0.7, 0.8));
        assert_eq!(debias_outcome(&pairs, 0.05).verdict, DebiasVerdict::Win);
        assert_eq!(debias_outcome(&pairs, 0.01).verdict, DebiasVerdict::Tie);
    }
}
