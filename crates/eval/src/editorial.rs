//! Tallies for the editorial study (Table VI).
//!
//! The study rates the top-k entities picked by each ranker on two
//! 3-level scales (interestingness, relevance) plus a rare "Can't Tell".
//! This module aggregates raw ratings into the percentage rows of
//! Table VI and computes the headline derived statistics the paper
//! quotes: the combined non-interesting/non-relevant share and the
//! Very-to-Somewhat relevance ratio.

use serde::{Deserialize, Serialize};

/// Counts for one 3-level scale.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tally {
    pub very: u64,
    pub somewhat: u64,
    pub not: u64,
    pub cant_tell: u64,
}

impl Tally {
    /// Create an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total judgments.
    pub fn total(&self) -> u64 {
        self.very + self.somewhat + self.not + self.cant_tell
    }

    /// Fraction rated "Very ...".
    pub fn frac_very(&self) -> f64 {
        self.frac(self.very)
    }

    /// Fraction rated "Somewhat ...".
    pub fn frac_somewhat(&self) -> f64 {
        self.frac(self.somewhat)
    }

    /// Fraction rated "Not ...".
    pub fn frac_not(&self) -> f64 {
        self.frac(self.not)
    }

    /// Fraction rated "Can't Tell".
    pub fn frac_cant_tell(&self) -> f64 {
        self.frac(self.cant_tell)
    }

    fn frac(&self, x: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            x as f64 / t as f64
        }
    }

    /// Very : Somewhat ratio (the paper quotes 1.82 → 2.52 for News
    /// relevance). Returns infinity when `somewhat` is 0 and `very` > 0.
    pub fn very_to_somewhat_ratio(&self) -> f64 {
        if self.somewhat == 0 {
            if self.very == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.very as f64 / self.somewhat as f64
        }
    }

    /// Merge another tally.
    pub fn merge(&mut self, other: Tally) {
        self.very += other.very;
        self.somewhat += other.somewhat;
        self.not += other.not;
        self.cant_tell += other.cant_tell;
    }
}

/// One system's Table VI row-set on one content type: both scales.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyCell {
    pub interestingness: Tally,
    pub relevance: Tally,
}

impl StudyCell {
    /// The paper's headline: average of the Not-Interesting and
    /// Not-Relevant fractions ("the overall average percentage of
    /// non-interesting and non-relevant terms").
    pub fn combined_bad_fraction(&self) -> f64 {
        (self.interestingness.frac_not() + self.relevance.frac_not()) / 2.0
    }

    /// Merge another cell.
    pub fn merge(&mut self, other: StudyCell) {
        self.interestingness.merge(other.interestingness);
        self.relevance.merge(other.relevance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let t = Tally {
            very: 30,
            somewhat: 50,
            not: 19,
            cant_tell: 1,
        };
        let sum = t.frac_very() + t.frac_somewhat() + t.frac_not() + t.frac_cant_tell();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(t.total(), 100);
    }

    #[test]
    fn empty_tally_all_zero() {
        let t = Tally::new();
        assert_eq!(t.total(), 0);
        assert_eq!(t.frac_very(), 0.0);
        assert_eq!(t.very_to_somewhat_ratio(), 0.0);
    }

    #[test]
    fn ratio_matches_paper_arithmetic() {
        // Paper, concept-vector News relevance: 53.0 / 29.2 = 1.82.
        let t = Tally {
            very: 530,
            somewhat: 292,
            not: 177,
            cant_tell: 1,
        };
        assert!((t.very_to_somewhat_ratio() - 1.815).abs() < 0.01);
    }

    #[test]
    fn ratio_edge_cases() {
        let t = Tally {
            very: 5,
            somewhat: 0,
            not: 0,
            cant_tell: 0,
        };
        assert!(t.very_to_somewhat_ratio().is_infinite());
    }

    #[test]
    fn combined_bad_fraction_averages_scales() {
        let cell = StudyCell {
            interestingness: Tally {
                very: 0,
                somewhat: 0,
                not: 30,
                cant_tell: 0,
            },
            relevance: Tally {
                very: 80,
                somewhat: 0,
                not: 20,
                cant_tell: 0,
            },
        };
        // 100% not-interesting... wait: interestingness is 30/30 = 1.0,
        // relevance not = 20/100 = 0.2 → mean 0.6.
        assert!((cell.combined_bad_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Tally {
            very: 1,
            somewhat: 2,
            not: 3,
            cant_tell: 0,
        };
        a.merge(Tally {
            very: 10,
            somewhat: 20,
            not: 30,
            cant_tell: 1,
        });
        assert_eq!(a.very, 11);
        assert_eq!(a.total(), 67);
        let mut cell = StudyCell::default();
        cell.merge(StudyCell {
            interestingness: a,
            relevance: a,
        });
        assert_eq!(cell.interestingness.very, 11);
    }
}
