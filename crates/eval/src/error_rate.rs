//! Pairwise error rates (Eq. 4 and Eq. 5).
//!
//! Given a predicted ranking and the correct ordering, consider all
//! preference pairs `(i, j)` with `CTRᵢ > CTRⱼ`:
//!
//! * **error rate** (Eq. 4) = mispredicted pairs / all pairs;
//! * **weighted error rate** (Eq. 5) = Σ CTR-difference over mispredicted
//!   pairs / Σ CTR-difference over all pairs — "we propose to punish
//!   mistakes according to their CTRs differences".
//!
//! Ties in the predicted scores are counted as half-mistakes (the
//! expected cost of the paper's "in the case of ties, we assume a random
//! ordering"), which keeps the metric deterministic.
//!
//! The worked example from §V-A.2 is encoded in the tests: for true CTRs
//! `[(A,.15),(B,.05),(C,.02),(D,.01)]`, prediction `R1=[A,B,D,C]` has
//! weighted error 2.22 % and `R2=[B,A,C,D]` 22.22 %.

/// Weighted pair counts for one or more rankings.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PairStats {
    /// Weight (or count) of mispredicted pairs.
    pub mistaken: f64,
    /// Weight (or count) of all preference pairs.
    pub total: f64,
}

impl PairStats {
    /// The error rate; 0 when no pairs exist.
    pub fn rate(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.mistaken / self.total
        }
    }

    /// Merge another set of counts (for corpus-level aggregation).
    pub fn merge(&mut self, other: PairStats) {
        self.mistaken += other.mistaken;
        self.total += other.total;
    }
}

fn stats_with_weight(scores: &[f64], ctrs: &[f64], weight: impl Fn(f64, f64) -> f64) -> PairStats {
    assert_eq!(scores.len(), ctrs.len(), "scores/ctrs length mismatch");
    let mut stats = PairStats::default();
    let n = scores.len();
    for i in 0..n {
        for j in 0..n {
            if ctrs[i] > ctrs[j] {
                let w = weight(ctrs[i], ctrs[j]);
                stats.total += w;
                if scores[i] < scores[j] {
                    stats.mistaken += w;
                } else if scores[i] == scores[j] {
                    // Random tie order: expected half cost.
                    stats.mistaken += 0.5 * w;
                }
            }
        }
    }
    stats
}

/// Unweighted pair statistics (Eq. 4): every pair costs 1.
pub fn pair_stats(scores: &[f64], ctrs: &[f64]) -> PairStats {
    stats_with_weight(scores, ctrs, |_, _| 1.0)
}

/// CTR-difference-weighted pair statistics (Eq. 5).
pub fn weighted_pair_stats(scores: &[f64], ctrs: &[f64]) -> PairStats {
    stats_with_weight(scores, ctrs, |hi, lo| hi - lo)
}

/// Accumulates both metrics across documents.
#[derive(Debug, Clone, Copy, Default)]
pub struct ErrorRateAccumulator {
    pub unweighted: PairStats,
    pub weighted: PairStats,
}

impl ErrorRateAccumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one document's ranking (predicted scores vs. observed CTRs).
    pub fn add(&mut self, scores: &[f64], ctrs: &[f64]) {
        self.unweighted.merge(pair_stats(scores, ctrs));
        self.weighted.merge(weighted_pair_stats(scores, ctrs));
    }

    /// The aggregated Eq. 4 error rate.
    pub fn error_rate(&self) -> f64 {
        self.unweighted.rate()
    }

    /// The aggregated Eq. 5 weighted error rate.
    pub fn weighted_error_rate(&self) -> f64 {
        self.weighted.rate()
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: &ErrorRateAccumulator) {
        self.unweighted.merge(other.unweighted);
        self.weighted.merge(other.weighted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §V-A.2 example: CTRs for A, B, C, D.
    const CTRS: [f64; 4] = [0.15, 0.05, 0.02, 0.01];

    /// Scores realizing the prediction R1 = [A, B, D, C].
    const R1: [f64; 4] = [4.0, 3.0, 1.0, 2.0];
    /// Scores realizing the prediction R2 = [B, A, C, D].
    const R2: [f64; 4] = [3.0, 4.0, 2.0, 1.0];

    #[test]
    fn paper_example_unweighted() {
        // Both R1 and R2 make exactly one pairwise mistake out of six.
        let e1 = pair_stats(&R1, &CTRS);
        let e2 = pair_stats(&R2, &CTRS);
        assert_eq!(e1.total, 6.0);
        assert!((e1.rate() - 1.0 / 6.0).abs() < 1e-9, "{}", e1.rate());
        assert!((e2.rate() - 1.0 / 6.0).abs() < 1e-9, "{}", e2.rate());
    }

    #[test]
    fn paper_example_weighted() {
        // The paper reports 2.22% for R1 and 22.22% for R2.
        let w1 = weighted_pair_stats(&R1, &CTRS);
        let w2 = weighted_pair_stats(&R2, &CTRS);
        assert!(
            (w1.rate() - 0.0222).abs() < 1e-3,
            "R1 weighted {}",
            w1.rate()
        );
        assert!(
            (w2.rate() - 0.2222).abs() < 1e-3,
            "R2 weighted {}",
            w2.rate()
        );
    }

    #[test]
    fn perfect_ranking_zero_error() {
        let scores = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(pair_stats(&scores, &CTRS).rate(), 0.0);
        assert_eq!(weighted_pair_stats(&scores, &CTRS).rate(), 0.0);
    }

    #[test]
    fn reversed_ranking_full_error() {
        let scores = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(pair_stats(&scores, &CTRS).rate(), 1.0);
        assert_eq!(weighted_pair_stats(&scores, &CTRS).rate(), 1.0);
    }

    #[test]
    fn all_tied_scores_half_error() {
        let scores = [1.0, 1.0, 1.0, 1.0];
        assert!((pair_stats(&scores, &CTRS).rate() - 0.5).abs() < 1e-12);
        assert!((weighted_pair_stats(&scores, &CTRS).rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tied_ctrs_form_no_pairs() {
        let stats = pair_stats(&[1.0, 2.0], &[0.05, 0.05]);
        assert_eq!(stats.total, 0.0);
        assert_eq!(stats.rate(), 0.0);
    }

    #[test]
    fn accumulator_aggregates_micro() {
        let mut acc = ErrorRateAccumulator::new();
        acc.add(&[2.0, 1.0], &[0.1, 0.05]); // correct: 0/1
        acc.add(&[1.0, 2.0], &[0.1, 0.05]); // wrong: 1/1
        assert!((acc.error_rate() - 0.5).abs() < 1e-12);
        assert!((acc.weighted_error_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighting_punishes_big_mistakes_more() {
        // Mistake on the (0.15, 0.01) pair vs on the (0.02, 0.01) pair.
        let big = weighted_pair_stats(&[1.0, 3.0, 2.0, 4.0], &CTRS);
        let small = weighted_pair_stats(&[4.0, 3.0, 1.0, 2.0], &CTRS);
        assert!(big.rate() > small.rate());
    }

    #[test]
    fn rates_bounded() {
        let scores = [0.3, 0.9, 0.1, 0.5];
        let r = weighted_pair_stats(&scores, &CTRS).rate();
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let _ = pair_stats(&[1.0], &[0.1, 0.2]);
    }

    #[test]
    fn empty_ranking_ok() {
        let stats = pair_stats(&[], &[]);
        assert_eq!(stats.rate(), 0.0);
    }
}
