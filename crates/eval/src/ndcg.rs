//! NDCG with the paper's CTR-bucket gain function (Eq. 6).
//!
//! ```text
//! NDCG_doc = N · Σ_{j=1..k} (2^score(j) − 1) / log(j + 1)
//! ```
//!
//! where `score(j) = bucketNo(CTR(j)) / 100`, `bucketNo` mapping a CTR to
//! a bucket `0‥1000` "considering all the CTR values observed in the
//! system in increasing order" — i.e. a scaled percentile rank — and `N`
//! normalizes a perfect ordering to 1.0.

/// The paper's bucket resolution.
pub const NUM_BUCKETS: u32 = 1000;

/// The bucket table: a frozen, sorted list of all observed CTRs.
#[derive(Debug, Clone)]
pub struct CtrBuckets {
    sorted: Vec<f64>,
}

impl CtrBuckets {
    /// Build from every CTR observed in the system.
    pub fn new(mut ctrs: Vec<f64>) -> Self {
        ctrs.retain(|c| c.is_finite());
        ctrs.sort_by(|a, b| a.partial_cmp(b).expect("finite ctrs"));
        Self { sorted: ctrs }
    }

    /// Bucket number in `0..=1000`: the scaled rank of `ctr` among all
    /// observed values.
    pub fn bucket(&self, ctr: f64) -> u32 {
        if self.sorted.is_empty() {
            return 0;
        }
        // Rank = number of observed values strictly below `ctr`.
        let rank = self.sorted.partition_point(|&x| x < ctr);
        ((rank as f64 / self.sorted.len() as f64) * NUM_BUCKETS as f64).round() as u32
    }

    /// The paper's judgment score in `0.00..=10.00`:
    /// `bucketNo(ctr) / 100`.
    pub fn score(&self, ctr: f64) -> f64 {
        self.bucket(ctr) as f64 / 100.0
    }

    /// Gain `2^score − 1`.
    pub fn gain(&self, ctr: f64) -> f64 {
        (2f64).powf(self.score(ctr)) - 1.0
    }

    /// Number of observations backing the table.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no CTRs were observed.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// NDCG@k for one document: items are ranked by `pred_scores`
/// (descending), gains come from `gains` (parallel to the items).
/// Returns 1.0 for an ideal ordering; 0 when all gains are zero.
pub fn ndcg_at_k(pred_scores: &[f64], gains: &[f64], k: usize) -> f64 {
    assert_eq!(pred_scores.len(), gains.len(), "length mismatch");
    let n = pred_scores.len();
    if n == 0 || k == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..n).collect();
    // Rank by predicted score, ties broken by original position (stable
    // and deterministic).
    order.sort_by(|&a, &b| {
        pred_scores[b]
            .partial_cmp(&pred_scores[a])
            .expect("finite scores")
            .then(a.cmp(&b))
    });
    let dcg: f64 = order
        .iter()
        .take(k)
        .enumerate()
        .map(|(pos, &idx)| gains[idx] / ((pos + 2) as f64).log2())
        .sum();

    let mut ideal: Vec<f64> = gains.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).expect("finite gains"));
    let idcg: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(pos, g)| g / ((pos + 2) as f64).log2())
        .sum();

    if idcg <= 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// Averages NDCG@k over documents for several cut-offs at once.
#[derive(Debug, Clone)]
pub struct NdcgAccumulator {
    ks: Vec<usize>,
    sums: Vec<f64>,
    count: usize,
}

impl NdcgAccumulator {
    /// Track the given cut-offs (the paper reports k = 1, 2, 3).
    pub fn new(ks: &[usize]) -> Self {
        Self {
            ks: ks.to_vec(),
            sums: vec![0.0; ks.len()],
            count: 0,
        }
    }

    /// Add one document.
    pub fn add(&mut self, pred_scores: &[f64], gains: &[f64]) {
        for (i, &k) in self.ks.iter().enumerate() {
            self.sums[i] += ndcg_at_k(pred_scores, gains, k);
        }
        self.count += 1;
    }

    /// Mean NDCG per cut-off, in the order given at construction.
    pub fn means(&self) -> Vec<f64> {
        let n = self.count.max(1) as f64;
        self.sums.iter().map(|s| s / n).collect()
    }

    /// Number of documents accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Merge another accumulator tracking the same cut-offs.
    ///
    /// # Panics
    /// Panics when the cut-off lists differ.
    pub fn merge(&mut self, other: &NdcgAccumulator) {
        assert_eq!(self.ks, other.ks, "cut-off mismatch");
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §V-A.2 example with score(j) = CTR(j)·10 (the paper's
    /// simplification): R1=[A,B,D,C] gets ndcg@1 = 1.0, R2=[B,A,C,D]
    /// gets 0.23.
    #[test]
    fn paper_ndcg_example() {
        let ctrs = [0.15, 0.05, 0.02, 0.01];
        let gains: Vec<f64> = ctrs.iter().map(|c| 2f64.powf(c * 10.0) - 1.0).collect();
        let r1 = [4.0, 3.0, 1.0, 2.0];
        let r2 = [3.0, 4.0, 2.0, 1.0];
        assert!((ndcg_at_k(&r1, &gains, 1) - 1.0).abs() < 1e-9);
        let n2 = ndcg_at_k(&r2, &gains, 1);
        assert!((n2 - 0.23).abs() < 0.005, "ndcg@1(R2) = {n2}");
        // ndcg@2: R1 = 1.0, R2 = 0.75; ndcg@3: R1 = 0.98, R2 = 0.76.
        assert!((ndcg_at_k(&r1, &gains, 2) - 1.0).abs() < 1e-9);
        assert!((ndcg_at_k(&r2, &gains, 2) - 0.75).abs() < 0.01);
        assert!((ndcg_at_k(&r1, &gains, 3) - 0.98).abs() < 0.01);
        assert!((ndcg_at_k(&r2, &gains, 3) - 0.76).abs() < 0.01);
    }

    #[test]
    fn perfect_ordering_is_one() {
        let gains = [7.0, 3.0, 1.0];
        assert!((ndcg_at_k(&[3.0, 2.0, 1.0], &gains, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let gains = [0.5, 2.0, 1.0, 4.0];
        for k in 1..=4 {
            let v = ndcg_at_k(&[1.0, 2.0, 3.0, 4.0], &gains, k);
            assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn zero_gains_zero_ndcg() {
        assert_eq!(ndcg_at_k(&[1.0, 2.0], &[0.0, 0.0], 2), 0.0);
    }

    #[test]
    fn empty_input() {
        assert_eq!(ndcg_at_k(&[], &[], 1), 0.0);
        assert_eq!(ndcg_at_k(&[1.0], &[1.0], 0), 0.0);
    }

    #[test]
    fn buckets_are_percentile_ranks() {
        let b = CtrBuckets::new(vec![
            0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10,
        ]);
        assert_eq!(b.bucket(0.005), 0);
        assert_eq!(b.bucket(0.055), 500);
        assert_eq!(b.bucket(1.0), 1000);
        // Score is bucket/100, in 0..=10.
        assert!((b.score(1.0) - 10.0).abs() < 1e-12);
        assert!(b.gain(1.0) > b.gain(0.05));
    }

    #[test]
    fn empty_buckets() {
        let b = CtrBuckets::new(vec![]);
        assert!(b.is_empty());
        assert_eq!(b.bucket(0.5), 0);
        assert_eq!(b.gain(0.5), 0.0);
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = NdcgAccumulator::new(&[1, 2]);
        acc.add(&[2.0, 1.0], &[3.0, 1.0]); // perfect → 1.0, 1.0
        acc.add(&[1.0, 2.0], &[3.0, 1.0]); // reversed @1: 1/3
        let m = acc.means();
        assert_eq!(acc.count(), 2);
        assert!((m[0] - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-9);
        assert!(m[1] > 0.8); // @2 recovers most of the gain
    }

    #[test]
    fn prediction_ties_broken_by_position() {
        let gains = [1.0, 5.0];
        // Tied predictions: first item ranked first → suboptimal but
        // deterministic.
        let v = ndcg_at_k(&[1.0, 1.0], &gains, 1);
        assert!(v < 1.0);
    }
}
