//! Paired significance testing for ranking comparisons.
//!
//! The paper reports that the learned model's weighted error rate "is
//! significantly lower than our baseline result" without a test
//! statistic. This module supplies one: a paired permutation test over
//! per-document weighted pair statistics. Under the null hypothesis the
//! two rankers are exchangeable on every document, so randomly swapping
//! their per-document outcomes yields the distribution of the WER
//! difference; the p-value is the fraction of permutations at least as
//! extreme as the observed difference.
//!
//! The module is dependency-free: permutation draws come from a local
//! SplitMix64 generator so `ctxrank-eval` keeps its tiny footprint.

use crate::error_rate::PairStats;

/// Result of a paired permutation test on weighted error rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedOutcome {
    /// Aggregated weighted error rate of system A.
    pub wer_a: f64,
    /// Aggregated weighted error rate of system B.
    pub wer_b: f64,
    /// Observed difference `wer_a − wer_b`.
    pub difference: f64,
    /// Two-sided permutation p-value.
    pub p_value: f64,
}

/// SplitMix64 — tiny, deterministic, good enough for permutation signs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn aggregate(stats: impl Iterator<Item = PairStats>) -> f64 {
    let mut total = PairStats::default();
    for s in stats {
        total.merge(s);
    }
    total.rate()
}

/// Paired permutation test over per-document `(system A, system B)`
/// weighted pair statistics.
///
/// `iterations` permutations are drawn with the given `seed`; the
/// returned p-value uses the add-one smoothing `(b + 1) / (n + 1)` so it
/// is never exactly zero.
pub fn paired_permutation_wer(
    per_doc: &[(PairStats, PairStats)],
    iterations: usize,
    seed: u64,
) -> PairedOutcome {
    let wer_a = aggregate(per_doc.iter().map(|p| p.0));
    let wer_b = aggregate(per_doc.iter().map(|p| p.1));
    let observed = wer_a - wer_b;

    let mut rng = SplitMix64(seed ^ 0x51611);
    let mut extreme = 0usize;
    for _ in 0..iterations {
        let mut a = PairStats::default();
        let mut b = PairStats::default();
        for &(sa, sb) in per_doc {
            if rng.flip() {
                a.merge(sb);
                b.merge(sa);
            } else {
                a.merge(sa);
                b.merge(sb);
            }
        }
        if (a.rate() - b.rate()).abs() >= observed.abs() - 1e-15 {
            extreme += 1;
        }
    }
    PairedOutcome {
        wer_a,
        wer_b,
        difference: observed,
        p_value: (extreme + 1) as f64 / (iterations + 1) as f64,
    }
}

/// Outcome of an exact two-sided sign test over paired differences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignTestOutcome {
    /// Documents where system A beat system B.
    pub wins_a: usize,
    /// Documents where system B beat system A.
    pub wins_b: usize,
    /// Exact ties (dropped from the test, per the standard recipe).
    pub ties: usize,
    /// Exact two-sided binomial p-value.
    pub p_value: f64,
}

/// Exact two-sided sign test: under the null, each non-tied document is
/// a fair coin, so `p = 2 · Σ_{i=0..min(w,l)} C(n,i) / 2^n` (capped at
/// 1), with `n = w + l`.
///
/// Computed with an iterative binomial term (`t₀ = 2⁻ⁿ`,
/// `tᵢ₊₁ = tᵢ·(n−i)/(i+1)`), which is exact within f64 up to n ≈ 1000;
/// past that `2⁻ⁿ` underflows and the permutation test is the right
/// tool anyway.
pub fn sign_test(wins_a: usize, wins_b: usize) -> f64 {
    let n = wins_a + wins_b;
    if n == 0 || wins_a == wins_b {
        return 1.0;
    }
    let m = wins_a.min(wins_b);
    let mut term = 0.5f64.powi(n as i32); // C(n,0) / 2^n
    let mut tail = 0.0f64;
    for i in 0..=m {
        tail += term;
        term *= (n - i) as f64 / (i + 1) as f64;
    }
    (2.0 * tail).min(1.0)
}

/// Sign test over per-document quality differences `quality(A) −
/// quality(B)` (positive = A better).
pub fn paired_sign_test(deltas: &[f64]) -> SignTestOutcome {
    let wins_a = deltas.iter().filter(|&&d| d > 0.0).count();
    let wins_b = deltas.iter().filter(|&&d| d < 0.0).count();
    SignTestOutcome {
        wins_a,
        wins_b,
        ties: deltas.len() - wins_a - wins_b,
        p_value: sign_test(wins_a, wins_b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_rate::weighted_pair_stats;

    fn doc_stats(scores_a: &[f64], scores_b: &[f64], ctrs: &[f64]) -> (PairStats, PairStats) {
        (
            weighted_pair_stats(scores_a, ctrs),
            weighted_pair_stats(scores_b, ctrs),
        )
    }

    /// System A perfect, system B reversed, many documents: the
    /// difference must be overwhelmingly significant.
    #[test]
    fn clear_difference_is_significant() {
        let ctrs = [0.10, 0.05, 0.02];
        let per_doc: Vec<_> = (0..60)
            .map(|_| doc_stats(&[3.0, 2.0, 1.0], &[1.0, 2.0, 3.0], &ctrs))
            .collect();
        let out = paired_permutation_wer(&per_doc, 2000, 7);
        assert_eq!(out.wer_a, 0.0);
        assert_eq!(out.wer_b, 1.0);
        assert!(out.p_value < 0.005, "p = {}", out.p_value);
    }

    /// Identical systems: the p-value must be large.
    #[test]
    fn identical_systems_not_significant() {
        let ctrs = [0.10, 0.05, 0.02];
        let per_doc: Vec<_> = (0..40)
            .map(|i| {
                let scores = if i % 2 == 0 {
                    [3.0, 2.0, 1.0]
                } else {
                    [1.0, 3.0, 2.0]
                };
                doc_stats(&scores, &scores, &ctrs)
            })
            .collect();
        let out = paired_permutation_wer(&per_doc, 1000, 11);
        assert_eq!(out.difference, 0.0);
        assert!(out.p_value > 0.9, "p = {}", out.p_value);
    }

    /// A tiny, noisy difference on few documents should not reach
    /// significance.
    #[test]
    fn small_noisy_difference_not_significant() {
        let ctrs = [0.10, 0.05, 0.02];
        let mut per_doc = vec![doc_stats(&[3.0, 2.0, 1.0], &[3.0, 2.0, 1.0], &ctrs); 10];
        // One document where A is slightly better.
        per_doc.push(doc_stats(&[3.0, 2.0, 1.0], &[3.0, 1.0, 2.0], &ctrs));
        let out = paired_permutation_wer(&per_doc, 2000, 3);
        assert!(out.wer_a < out.wer_b);
        assert!(out.p_value > 0.05, "p = {}", out.p_value);
    }

    /// Determinism: same seed, same p-value.
    #[test]
    fn deterministic() {
        let ctrs = [0.10, 0.05];
        let per_doc: Vec<_> = (0..20)
            .map(|i| {
                let a = if i % 3 == 0 { [1.0, 2.0] } else { [2.0, 1.0] };
                doc_stats(&a, &[2.0, 1.0], &ctrs)
            })
            .collect();
        let x = paired_permutation_wer(&per_doc, 500, 42);
        let y = paired_permutation_wer(&per_doc, 500, 42);
        assert_eq!(x, y);
    }

    /// Empty input degenerates gracefully.
    #[test]
    fn empty_input() {
        let out = paired_permutation_wer(&[], 100, 1);
        assert_eq!(out.wer_a, 0.0);
        assert_eq!(out.wer_b, 0.0);
        assert!(out.p_value > 0.99);
    }
}
