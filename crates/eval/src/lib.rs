//! Evaluation metrics and study harnesses (§V).
//!
//! * [`error_rate`] — the pairwise error rate (Eq. 4) and the paper's
//!   **weighted error rate** (Eq. 5), where each mispredicted preference
//!   pair is punished proportionally to the CTR difference of its two
//!   concepts;
//! * [`ndcg`] — the normalized discounted cumulative gain (Eq. 6) with
//!   the paper's CTR-bucket gain function (`score(j) =
//!   bucketNo(CTR(j))/100`, buckets 0‥1000 over all CTRs observed in the
//!   system);
//! * [`editorial`] — tallies for the Table VI editorial study;
//! * [`production`] — before/after accounting for the §V-C production
//!   A/B comparison (views, clicks, CTR deltas);
//! * [`significance`] — a paired permutation test backing the paper's
//!   "significantly lower" claims with an actual p-value;
//! * [`debias`] — verdicts for the position-bias debiasing experiment:
//!   the exact sign test over paired golden-NDCG scores, mapped to
//!   win/tie/loss at a significance threshold.

pub mod debias;
pub mod editorial;
pub mod error_rate;
pub mod ndcg;
pub mod production;
pub mod significance;

pub use debias::{debias_outcome, DebiasOutcome, DebiasVerdict};
pub use editorial::Tally;
pub use error_rate::{pair_stats, weighted_pair_stats, ErrorRateAccumulator, PairStats};
pub use ndcg::{ndcg_at_k, CtrBuckets, NdcgAccumulator};
pub use production::PeriodStats;
pub use significance::{
    paired_permutation_wer, paired_sign_test, sign_test, PairedOutcome, SignTestOutcome,
};
