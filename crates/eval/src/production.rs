//! Production A/B accounting (§V-C).
//!
//! "When we compare the outcome to what we observed in the preceding
//! twenty weeks, we see that the number of average weekly views was
//! reduced by 52.5%, and yet the number of average weekly clicks
//! received was down by only 2.0%. This translates to an increase of
//! 100.1% in CTR." This module computes those before/after deltas from
//! aggregated view/click counts.

use serde::{Deserialize, Serialize};

/// Aggregated traffic for one period.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodStats {
    /// Number of weeks the period spans.
    pub weeks: u32,
    /// Total annotation views in the period.
    pub views: u64,
    /// Total annotation clicks in the period.
    pub clicks: u64,
}

impl PeriodStats {
    /// Create a period.
    pub fn new(weeks: u32) -> Self {
        Self {
            weeks,
            views: 0,
            clicks: 0,
        }
    }

    /// Record some traffic.
    pub fn record(&mut self, views: u64, clicks: u64) {
        self.views += views;
        self.clicks += clicks;
    }

    /// Average weekly views.
    pub fn weekly_views(&self) -> f64 {
        self.views as f64 / self.weeks.max(1) as f64
    }

    /// Average weekly clicks.
    pub fn weekly_clicks(&self) -> f64 {
        self.clicks as f64 / self.weeks.max(1) as f64
    }

    /// Overall CTR.
    pub fn ctr(&self) -> f64 {
        if self.views == 0 {
            0.0
        } else {
            self.clicks as f64 / self.views as f64
        }
    }

    /// Percentage change of weekly views from `baseline` to `self`
    /// (negative = reduction).
    pub fn views_delta_pct(&self, baseline: &PeriodStats) -> f64 {
        pct_change(baseline.weekly_views(), self.weekly_views())
    }

    /// Percentage change of weekly clicks from `baseline` to `self`.
    pub fn clicks_delta_pct(&self, baseline: &PeriodStats) -> f64 {
        pct_change(baseline.weekly_clicks(), self.weekly_clicks())
    }

    /// Percentage change of CTR from `baseline` to `self`.
    pub fn ctr_delta_pct(&self, baseline: &PeriodStats) -> f64 {
        pct_change(baseline.ctr(), self.ctr())
    }
}

fn pct_change(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        0.0
    } else {
        (after - before) / before * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reconstruct the paper's §V-C numbers: views −52.5%, clicks −2.0%
    /// ⇒ CTR +106% (the paper says +100.1% with its exact traffic).
    #[test]
    fn paper_shape_reconstruction() {
        let mut before = PeriodStats::new(20);
        before.record(2_000_000, 20_000);
        let mut after = PeriodStats::new(15);
        // Scale weekly views to 47.5% and weekly clicks to 98%.
        after.record(
            (2_000_000.0 / 20.0 * 15.0 * 0.475) as u64,
            (20_000.0 / 20.0 * 15.0 * 0.98) as u64,
        );
        assert!((after.views_delta_pct(&before) + 52.5).abs() < 0.1);
        assert!((after.clicks_delta_pct(&before) + 2.0).abs() < 0.1);
        let ctr_up = after.ctr_delta_pct(&before);
        assert!(
            (ctr_up - 106.3).abs() < 1.0,
            "ctr delta {ctr_up} (0.98/0.475 − 1 ≈ +106%)"
        );
    }

    #[test]
    fn ctr_computation() {
        let mut p = PeriodStats::new(1);
        p.record(1000, 25);
        assert!((p.ctr() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_safe() {
        let a = PeriodStats::new(1);
        let b = PeriodStats::new(1);
        assert_eq!(b.views_delta_pct(&a), 0.0);
        assert_eq!(b.ctr(), 0.0);
    }

    #[test]
    fn weekly_averages_respect_period_length() {
        let mut p = PeriodStats::new(4);
        p.record(400, 40);
        assert_eq!(p.weekly_views(), 100.0);
        assert_eq!(p.weekly_clicks(), 10.0);
    }

    #[test]
    fn record_accumulates() {
        let mut p = PeriodStats::new(2);
        p.record(10, 1);
        p.record(20, 2);
        assert_eq!(p.views, 30);
        assert_eq!(p.clicks, 3);
    }
}
