//! Worked-by-hand golden values for the evaluation metrics.
//!
//! Unit tests elsewhere check invariants (perfect ordering → 1.0,
//! symmetry, determinism); these pin the *arithmetic* to numbers
//! computed by hand on paper, so a silent change to a log base, an
//! off-by-one in a rank position, or a dropped factor of two in a
//! p-value fails loudly with a known-correct expectation.

use ctxrank_eval::{ndcg_at_k, paired_sign_test, sign_test, CtrBuckets};

// ------------------------------------------------------------- NDCG@k
//
// gains = [3, 1, 0, 7], predictions rank the items in the given order.
//
//   DCG positions use gain / log2(pos + 2):
//     pos 1: 3 / log2(2) = 3
//     pos 2: 1 / log2(3) = 1 / 1.5849625007211562 = 0.6309297535714575
//     pos 3: 0 / log2(4) = 0
//     pos 4: 7 / log2(5) = 7 / 2.321928094887362  = 3.0147359064637512
//
//   Ideal ordering is [7, 3, 1, 0]:
//     IDCG@1 = 7
//     IDCG@2 = 7 + 3 / log2(3) = 7 + 1.8927892607143723 = 8.892789260714373
//     IDCG@4 = IDCG@2 + 1 / log2(4) = 9.392789260714373

const PRED: [f64; 4] = [4.0, 3.0, 2.0, 1.0];
const GAINS: [f64; 4] = [3.0, 1.0, 0.0, 7.0];

#[test]
fn ndcg_at_1_is_three_sevenths() {
    let v = ndcg_at_k(&PRED, &GAINS, 1);
    assert!((v - 3.0 / 7.0).abs() < 1e-12, "got {v}");
}

#[test]
fn ndcg_at_2_matches_hand_computation() {
    // (3 + 0.6309297535714575) / 8.892789260714373 = 0.40830043838009256
    let v = ndcg_at_k(&PRED, &GAINS, 2);
    assert!((v - 0.40830043838009256).abs() < 1e-9, "got {v}");
}

#[test]
fn ndcg_at_4_matches_hand_computation() {
    // (3 + 0.6309297535714575 + 0 + 3.0147359064637512) / 9.392789260714373
    //   = 6.645665660085209 / 9.392789260714373 = 0.7075284535426455
    let v = ndcg_at_k(&PRED, &GAINS, 4);
    assert!((v - 0.7075284535426455).abs() < 1e-9, "got {v}");
}

#[test]
fn ideal_ordering_scores_one_exactly() {
    // Predictions agreeing with the gains: DCG = IDCG by construction.
    let v = ndcg_at_k(&[7.0, 3.0, 1.0, 0.0], &[7.0, 3.0, 1.0, 0.0], 4);
    assert!((v - 1.0).abs() < 1e-12, "got {v}");
}

// ------------------------------------------------- CTR bucket judgments
//
// Observed CTRs {0.01, 0.02, 0.03, 0.04}: bucket(c) = 1000 · rank/4
// where rank counts observed values strictly below c.

#[test]
fn ctr_buckets_are_scaled_percentile_ranks() {
    let buckets = CtrBuckets::new(vec![0.01, 0.02, 0.03, 0.04]);
    assert_eq!(buckets.bucket(0.01), 0); // nothing below
    assert_eq!(buckets.bucket(0.03), 500); // 2 of 4 below
    assert_eq!(buckets.bucket(0.04), 750); // 3 of 4 below
    assert_eq!(buckets.bucket(1.0), 1000); // everything below

    // score = bucket / 100, gain = 2^score − 1: bucket 500 → score 5.0
    // → gain 31 exactly.
    assert!((buckets.score(0.03) - 5.0).abs() < 1e-12);
    assert!((buckets.gain(0.03) - 31.0).abs() < 1e-9);
}

// ------------------------------------------------------------ sign test
//
// p = 2 · Σ_{i=0..min(w,l)} C(n,i) / 2^n, ties dropped, capped at 1.
//
//   w=6, l=0: 2 · C(6,0)/2^6            = 2/64        = 0.03125
//   w=5, l=0: 2 · C(5,0)/2^5            = 2/32        = 0.0625
//   w=7, l=1: 2 · (C(8,0)+C(8,1))/2^8   = 2·9/256     = 0.0703125
//   w=5, l=1: 2 · (C(6,0)+C(6,1))/2^6   = 2·7/64      = 0.21875

#[test]
fn sign_test_matches_hand_computed_binomials() {
    assert!((sign_test(6, 0) - 0.03125).abs() < 1e-15);
    assert!((sign_test(5, 0) - 0.0625).abs() < 1e-15);
    assert!((sign_test(7, 1) - 0.0703125).abs() < 1e-15);
    assert!((sign_test(5, 1) - 0.21875).abs() < 1e-15);
}

#[test]
fn sign_test_is_symmetric_and_capped() {
    assert_eq!(sign_test(1, 7), sign_test(7, 1));
    // Even split: the doubled tail exceeds 1 and must be capped.
    assert_eq!(sign_test(3, 3), 1.0);
    // Degenerate inputs.
    assert_eq!(sign_test(0, 0), 1.0);
}

#[test]
fn paired_sign_test_counts_and_drops_ties() {
    // 5 wins for A, 1 for B, 2 ties → same as sign_test(5, 1).
    let deltas = [0.3, 0.1, 0.2, 0.4, 0.5, -0.2, 0.0, 0.0];
    let out = paired_sign_test(&deltas);
    assert_eq!(out.wins_a, 5);
    assert_eq!(out.wins_b, 1);
    assert_eq!(out.ties, 2);
    assert!((out.p_value - 0.21875).abs() < 1e-15);
}
