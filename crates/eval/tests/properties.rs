//! Property-based tests for the evaluation metrics.

use ctxrank_eval::{ndcg_at_k, pair_stats, weighted_pair_stats, CtrBuckets};
use proptest::prelude::*;

proptest! {
    /// Both error rates are always in [0, 1].
    #[test]
    fn error_rates_bounded(
        pairs in prop::collection::vec((-100.0f64..100.0, 0.0f64..0.2), 0..12)
    ) {
        let scores: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ctrs: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let e = pair_stats(&scores, &ctrs).rate();
        let w = weighted_pair_stats(&scores, &ctrs).rate();
        prop_assert!((0.0..=1.0).contains(&e));
        prop_assert!((0.0..=1.0).contains(&w));
    }

    /// Scoring by the labels themselves is always perfect; the reversed
    /// scores are always maximally wrong (when any pairs exist).
    #[test]
    fn oracle_and_antioracle(ctrs in prop::collection::vec(0.0f64..0.2, 2..10)) {
        let scores = ctrs.clone();
        prop_assert_eq!(weighted_pair_stats(&scores, &ctrs).rate(), 0.0);
        let anti: Vec<f64> = ctrs.iter().map(|c| -c).collect();
        let stats = weighted_pair_stats(&anti, &ctrs);
        if stats.total > 0.0 {
            prop_assert_eq!(stats.rate(), 1.0);
        }
    }

    /// Complementing the prediction complements the weighted error:
    /// err(s) + err(-s) = 1 when there are no score ties.
    #[test]
    fn error_rate_antisymmetry(n in 2usize..8, seed in 0u64..1000) {
        // Distinct scores and ctrs from the seed, no ties.
        let scores: Vec<f64> = (0..n).map(|i| ((seed + i as u64 * 7919) % 1000) as f64 + i as f64 * 1e-3).collect();
        let ctrs: Vec<f64> = (0..n).map(|i| i as f64 * 0.01 + 0.001).collect();
        let fwd = weighted_pair_stats(&scores, &ctrs);
        let rev_scores: Vec<f64> = scores.iter().map(|s| -s).collect();
        let rev = weighted_pair_stats(&rev_scores, &ctrs);
        prop_assert!((fwd.rate() + rev.rate() - 1.0).abs() < 1e-9);
    }

    /// NDCG is in [0, 1] and equals 1 for the gain-sorted ordering.
    #[test]
    fn ndcg_bounds_and_perfect(
        items in prop::collection::vec((-100.0f64..100.0, 0.0f64..50.0), 1..10),
        k in 1usize..10,
    ) {
        let scores: Vec<f64> = items.iter().map(|i| i.0).collect();
        let gains: Vec<f64> = items.iter().map(|i| i.1).collect();
        let v = ndcg_at_k(&scores, &gains, k);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
        // Perfect ordering: score = gain.
        let perfect = ndcg_at_k(&gains, &gains, k);
        if gains.iter().any(|g| *g > 0.0) {
            prop_assert!((perfect - 1.0).abs() < 1e-9);
        }
    }

    /// Bucket numbers are monotone in the CTR and bounded by 0..=1000.
    #[test]
    fn buckets_monotone(ctrs in prop::collection::vec(0.0f64..0.5, 1..100)) {
        let buckets = CtrBuckets::new(ctrs.clone());
        let mut probes: Vec<f64> = ctrs;
        probes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut last = 0;
        for p in probes {
            let b = buckets.bucket(p);
            prop_assert!(b <= 1000);
            prop_assert!(b >= last, "bucket not monotone");
            last = b;
        }
    }

    /// Gains are non-negative and monotone in the bucket score.
    #[test]
    fn gains_monotone(ctrs in prop::collection::vec(0.0f64..0.5, 2..50)) {
        let buckets = CtrBuckets::new(ctrs.clone());
        let lo = ctrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ctrs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(buckets.gain(lo) >= 0.0);
        prop_assert!(buckets.gain(hi) >= buckets.gain(lo));
    }
}
