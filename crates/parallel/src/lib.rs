//! Deterministic data-parallel primitives for the experiment and
//! ranking hot paths.
//!
//! The execution engine is a **lazily-initialized persistent worker
//! pool**: the first parallel call spawns the workers, and every later
//! call reuses them, so the per-call cost is a queue push and a condvar
//! wake instead of `threads` thread spawns. Each call splits its input
//! into one contiguous segment per worker; a worker drains its own
//! segment in adaptively-sized chunks (derived from item count and
//! worker count, see [`adaptive_chunk`]) and, when its segment is dry,
//! steals chunks from the other segments. Results are written into
//! index-addressed output slots, so output order — and therefore every
//! downstream consumer — is identical to the sequential loop, element
//! for element, regardless of scheduling.
//!
//! Fan-out is capped at the machine's available parallelism (or the
//! `CTXRANK_THREADS` override when it asks for more): oversubscribing a
//! CPU-bound map never helps, and the cap is what lets a request for
//! "8 threads" on a 1-core host degenerate to the plain inline loop
//! instead of paying scheduler overhead for negative scaling.
//! [`par_map_exact`] bypasses the cap for tests and scaling
//! experiments that must exercise the pool machinery regardless of the
//! host.
//!
//! With one effective worker, `par_map` degenerates to a plain in-place
//! map on the calling thread, so the serial and parallel code paths run
//! the exact same closure either way.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Worker count: `CTXRANK_THREADS` if set to a usable value, else the
/// machine's available parallelism. A value of `0`, an empty string, or
/// garbage never reaches callers — every pool in the workspace (and the
/// serving layer's worker threads) sizes itself through here, so the
/// override must degrade to the default rather than to zero workers.
pub fn num_threads() -> usize {
    parse_threads(std::env::var("CTXRANK_THREADS").ok().as_deref()).unwrap_or_else(hardware_threads)
}

/// Interpret a `CTXRANK_THREADS` value: `Some(n)` only for a parseable
/// integer >= 1, `None` (fall back to the default) for unset, empty,
/// zero, negative, or non-numeric input.
pub fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The machine's available parallelism (cached; `1` when unknown).
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Upper bound on useful fan-out: the hardware parallelism, raised by an
/// explicit `CTXRANK_THREADS` override (someone who sets the variable
/// above the core count is asking for oversubscription on purpose —
/// e.g. concurrency tests on a small host).
fn fan_out_cap() -> usize {
    let hw = hardware_threads();
    parse_threads(std::env::var("CTXRANK_THREADS").ok().as_deref()).map_or(hw, |t| t.max(hw))
}

/// The worker count [`par_map`] will actually use for a request of
/// `threads` over `items` inputs: capped by [`fan_out_cap`] and by the
/// item count, never zero. Benches report this so recorded thread
/// counts are the measured ones, not the requested ones.
pub fn effective_workers(threads: usize, items: usize) -> usize {
    threads.min(fan_out_cap()).min(items.max(1)).max(1)
}

/// How many chunks each worker's segment is split into. Small chunks
/// balance skewed workloads (one long document among many short ones);
/// the divisor keeps the atomic claim traffic proportional to the
/// worker count rather than the item count.
const TARGET_CHUNKS_PER_WORKER: usize = 8;

/// Chunk ceiling so gigantic inputs still rebalance across workers.
const MAX_CHUNK: usize = 4096;

/// Hard cap on persistent pool threads, far above any sane fan-out.
const MAX_POOL_WORKERS: usize = 256;

/// Claim granularity for `n` items across `workers` segments: about
/// [`TARGET_CHUNKS_PER_WORKER`] claims per worker, clamped to
/// `1..=`[`MAX_CHUNK`]. Replaces the old fixed `CHUNK = 8`, whose claim
/// count grew linearly with the input while the work per claim stayed
/// constant.
fn adaptive_chunk(n: usize, workers: usize) -> usize {
    (n / (workers * TARGET_CHUNKS_PER_WORKER)).clamp(1, MAX_CHUNK)
}

/// Map `f` over `items`, in parallel, preserving order.
///
/// `threads == 1` (or a single item, or a single effective worker after
/// the hardware cap) runs inline on the caller's thread. Results land
/// at the same index as their input, so the output is byte-identical to
/// `items.iter().map(f).collect()` regardless of thread count or
/// scheduling.
///
/// Panics in `f` propagate to the caller once all workers stop.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_exact(effective_workers(threads, items.len()), items, f)
}

/// [`par_map`] with an exact fan-out, bypassing the hardware cap.
///
/// This exists so tests and scaling experiments can force real
/// multi-worker execution on hosts whose available parallelism would
/// otherwise collapse the call to the inline path. Production callers
/// should use [`par_map`].
pub fn par_map_exact<T, R, F>(fan_out: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if fan_out <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let fan_out = fan_out.min(n);

    // Collect into index-addressed slots so claim order can't reorder
    // the output.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    let ctx = MapCtx {
        items,
        slots: slots.as_mut_ptr(),
        f: &f,
        segments: build_segments(n, fan_out),
        tickets: AtomicUsize::new(0),
        chunk: adaptive_chunk(n, fan_out),
        abort: AtomicBool::new(false),
        panic: Mutex::new(None),
    };
    let job = Arc::new(Job {
        exec: run_map::<T, R, F>,
        ctx: (&raw const ctx).cast::<()>(),
        open: AtomicBool::new(true),
        pending: AtomicUsize::new(0),
        done_lock: Mutex::new(()),
        done_cv: Condvar::new(),
    });

    let pool = pool();
    pool.ensure_workers(fan_out - 1);
    pool.shared
        .queue
        .lock()
        .expect("pool queue poisoned")
        .push(Arc::clone(&job));
    pool.shared.work_ready.notify_all();

    // The caller is always one of the workers, so progress never
    // depends on pool threads being free (this also makes nested
    // par_map calls deadlock-free: the inner caller can drain its own
    // job alone).
    // SAFETY: `ctx` outlives every `exec` call — helpers register in
    // `pending` under the queue lock while the job is queued, we remove
    // the job from the queue below and then wait for `pending == 0`.
    unsafe { (job.exec)(job.ctx) };
    job.open.store(false, Ordering::Release);
    pool.shared
        .queue
        .lock()
        .expect("pool queue poisoned")
        .retain(|j| !Arc::ptr_eq(j, &job));
    let mut guard = job.done_lock.lock().expect("job lock poisoned");
    while job.pending.load(Ordering::SeqCst) > 0 {
        guard = job.done_cv.wait(guard).expect("job lock poisoned");
    }
    drop(guard);

    if let Some(payload) = ctx.panic.lock().expect("panic slot poisoned").take() {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| s.expect("par_map: worker skipped a slot"))
        .collect()
}

/// A boxed job parked in a lockable slot so exactly one pool worker
/// can claim it; the `Mutex` carries the `Sync` bound `par_map` needs.
type JobSlot<'a, R> = Mutex<Option<Box<dyn FnOnce() -> R + Send + 'a>>>;

/// Run independent thunks concurrently, returning results in argument
/// order. A convenience wrapper for "a handful of heterogeneous jobs"
/// (e.g. one relevance model per mining resource); routed through the
/// same pool as [`par_map`], so it inherits the fan-out cap and the
/// inline degeneration with one effective worker.
pub fn join_all<R: Send>(threads: usize, jobs: Vec<Box<dyn FnOnce() -> R + Send + '_>>) -> Vec<R> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let slots: Vec<JobSlot<'_, R>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    par_map(threads, &slots, |slot| {
        let job = slot
            .lock()
            .expect("join_all job poisoned")
            .take()
            .expect("join_all: slot claimed twice");
        job()
    })
}

// ---------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------

/// One contiguous range of input indices owned by one worker. Padded to
/// a cache line so claim traffic on one segment never invalidates a
/// neighbour's.
#[repr(align(64))]
struct Segment {
    next: AtomicUsize,
    end: usize,
}

/// Split `0..n` into `workers` near-equal contiguous segments.
fn build_segments(n: usize, workers: usize) -> Vec<Segment> {
    let base = n / workers;
    let rem = n % workers;
    let mut segments = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        segments.push(Segment {
            next: AtomicUsize::new(start),
            end: start + len,
        });
        start += len;
    }
    segments
}

/// Per-call typed state, living on the submitting caller's stack for
/// the duration of the call. Accessed by workers only between their
/// `pending` registration and deregistration, which the caller brackets
/// with its completion wait.
struct MapCtx<'a, T, R, F> {
    items: &'a [T],
    /// Raw slot base; disjoint chunk claims guarantee disjoint writes.
    slots: *mut Option<R>,
    f: &'a F,
    segments: Vec<Segment>,
    /// Entry tickets: ticket `w < segments.len()` makes the entrant the
    /// owner of segment `w`; later entrants bounce off.
    tickets: AtomicUsize,
    chunk: usize,
    /// Set on panic so other workers stop claiming promptly.
    abort: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A queued parallel call: a type-erased entry point plus the handshake
/// state the untyped worker loop needs.
struct Job {
    exec: unsafe fn(*const ()),
    ctx: *const (),
    /// Accepting new entrants? Cleared once any entrant observes the
    /// work exhausted (claims are monotone, so one drained scan means
    /// drained forever).
    open: AtomicBool,
    /// Workers currently inside `exec`. Incremented under the queue
    /// lock while the job is queued; the submitter dequeues and then
    /// waits for zero, so `ctx` cannot be touched after the call
    /// returns.
    pending: AtomicUsize,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: `ctx` is only dereferenced inside `exec`, whose monomorphized
// instantiation enforces `T: Sync`, `R: Send`, `F: Sync`; the lifetime
// of the pointee is protected by the pending-count handshake above.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// Typed worker body: take an entry ticket, drain the owned segment in
/// chunks, then steal chunks from the other segments until everything
/// is claimed. Returns only when no claimable work remains (or on
/// ticket overflow / abort).
unsafe fn run_map<T, R, F>(ctx: *const ())
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // SAFETY: the caller (worker loop or submitter) guarantees `ctx`
    // points at a live `MapCtx<T, R, F>` for the duration of this call.
    let ctx = unsafe { &*ctx.cast::<MapCtx<T, R, F>>() };
    let ticket = ctx.tickets.fetch_add(1, Ordering::Relaxed);
    let k = ctx.segments.len();
    if ticket >= k {
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        for off in 0..k {
            let seg = &ctx.segments[(ticket + off) % k];
            loop {
                if ctx.abort.load(Ordering::Relaxed) {
                    return;
                }
                let start = seg.next.fetch_add(ctx.chunk, Ordering::Relaxed);
                if start >= seg.end {
                    break;
                }
                let end = (start + ctx.chunk).min(seg.end);
                for (i, item) in ctx.items[start..end].iter().enumerate() {
                    let out = (ctx.f)(item);
                    // SAFETY: index `start + i` is claimed by exactly
                    // one worker (fetch_add hands out disjoint ranges)
                    // and the slot vector outlives the job.
                    unsafe { ctx.slots.add(start + i).write(Some(out)) };
                }
            }
        }
    }));
    if let Err(payload) = outcome {
        ctx.abort.store(true, Ordering::Relaxed);
        let mut slot = ctx.panic.lock().expect("panic slot poisoned");
        slot.get_or_insert(payload);
    }
}

struct PoolShared {
    queue: Mutex<Vec<Arc<Job>>>,
    work_ready: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    spawned: Mutex<usize>,
}

impl Pool {
    /// Grow the persistent worker set to at least `want` threads
    /// (bounded by [`MAX_POOL_WORKERS`]). Spawn failure degrades to
    /// fewer helpers — the submitting caller always participates, so
    /// correctness never depends on this succeeding.
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_POOL_WORKERS);
        let mut spawned = self.spawned.lock().expect("pool spawn lock poisoned");
        while *spawned < want {
            let shared = Arc::clone(&self.shared);
            let ok = std::thread::Builder::new()
                .name(format!("ctxrank-pool-{spawned}"))
                .spawn(move || worker_loop(&shared))
                .is_ok();
            if !ok {
                break;
            }
            *spawned += 1;
        }
    }
}

/// The process-wide pool, created on first parallel call.
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Arc::new(PoolShared {
            queue: Mutex::new(Vec::new()),
            work_ready: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

/// Persistent worker: sleep until a job is queued, help drain it, mark
/// it closed, deregister, repeat. Never exits; pool threads die with
/// the process.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.iter().find(|j| j.open.load(Ordering::Acquire)) {
                    let job = Arc::clone(job);
                    // Registered while the job is still queued and the
                    // lock is held: the submitter's dequeue (same lock)
                    // strictly follows, so it will wait for us.
                    job.pending.fetch_add(1, Ordering::SeqCst);
                    break job;
                }
                queue = shared.work_ready.wait(queue).expect("pool queue poisoned");
            }
        };
        // SAFETY: see `Job::pending` — the submitter keeps `ctx` alive
        // until we deregister below.
        unsafe { (job.exec)(job.ctx) };
        // `exec` returns only once no claimable work remains, so stop
        // further entrants from paying the entry cost.
        job.open.store(false, Ordering::Release);
        let guard = job.done_lock.lock().expect("job lock poisoned");
        if job.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            job.done_cv.notify_all();
        }
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let parallel = par_map(threads, &items, |x| x * x + 1);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn exact_fan_out_matches_sequential_map() {
        // Forces real pool execution even on a 1-core host.
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for fan_out in [2, 3, 8, 64] {
            let parallel = par_map_exact(fan_out, &items, |x| x * x + 1);
            assert_eq!(parallel, serial, "fan_out={fan_out}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map(4, &empty, |x| x + 1), Vec::<u32>::new());
        assert_eq!(par_map(4, &[7u32], |x| x + 1), vec![8]);
        assert_eq!(par_map_exact(4, &empty, |x| x + 1), Vec::<u32>::new());
        assert_eq!(par_map_exact(4, &[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn unbalanced_items_keep_order() {
        // Heavy items early: chunk claiming and stealing must not
        // reorder output.
        let items: Vec<usize> = (0..257).collect();
        let out = par_map_exact(4, &items, |&i| {
            let spins = if i < 8 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for s in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Back-to-back calls through the same persistent pool, with
        // varying sizes so segment/chunk geometry changes every call.
        for round in 0..20usize {
            let n = 1 + round * 37;
            let items: Vec<usize> = (0..n).collect();
            let serial: Vec<usize> = items.iter().map(|x| x ^ round).collect();
            assert_eq!(par_map_exact(3, &items, |x| x ^ round), serial, "n={n}");
        }
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        let outer: Vec<usize> = (0..8).collect();
        let out = par_map_exact(4, &outer, |&i| {
            let inner: Vec<usize> = (0..50).collect();
            par_map_exact(3, &inner, |&j| i * 1000 + j)
                .iter()
                .sum::<usize>()
        });
        let expect: Vec<usize> = outer
            .iter()
            .map(|&i| (0..50).map(|j| i * 1000 + j).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panic_in_f_propagates() {
        let items: Vec<u32> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_exact(4, &items, |&x| {
                assert!(x != 37, "boom");
                x
            })
        });
        assert!(result.is_err());
        // The pool must still be usable after a panicked job.
        assert_eq!(
            par_map_exact(4, &items, |&x| x + 1),
            items.iter().map(|&x| x + 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn join_all_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..5usize)
            .map(|i| Box::new(move || i * 10) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(join_all(4, jobs), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn effective_workers_bounds() {
        assert_eq!(effective_workers(1, 100), 1);
        assert!(effective_workers(8, 100) >= 1);
        assert!(effective_workers(8, 100) <= 8);
        assert_eq!(effective_workers(8, 0), 1);
        assert_eq!(effective_workers(8, 3).min(3), effective_workers(8, 3));
    }

    #[test]
    fn adaptive_chunk_scales_with_input() {
        assert_eq!(adaptive_chunk(10, 4), 1);
        assert!(adaptive_chunk(100_000, 4) > adaptive_chunk(1_000, 4));
        assert!(adaptive_chunk(usize::MAX / 2, 2) <= MAX_CHUNK);
        assert!(adaptive_chunk(0, 8) >= 1);
    }

    #[test]
    fn segments_cover_input_exactly() {
        for (n, w) in [(10, 3), (7, 7), (100, 8), (3, 2)] {
            let segs = build_segments(n, w);
            assert_eq!(segs.len(), w);
            let mut covered = 0usize;
            for s in &segs {
                let start = s.next.load(Ordering::Relaxed);
                assert_eq!(start, covered);
                covered = s.end;
            }
            assert_eq!(covered, n, "n={n} w={w}");
        }
    }

    #[test]
    fn num_threads_env_override() {
        std::env::set_var("CTXRANK_THREADS", "3");
        assert_eq!(num_threads(), 3);
        std::env::set_var("CTXRANK_THREADS", "bogus");
        assert!(num_threads() >= 1);
        std::env::remove_var("CTXRANK_THREADS");
        assert!(num_threads() >= 1);
    }

    #[test]
    fn parse_threads_accepts_only_usable_counts() {
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some("16")), Some(16));
        assert_eq!(parse_threads(Some("  8 ")), Some(8));
    }

    #[test]
    fn parse_threads_falls_back_on_zero_empty_or_garbage() {
        for bad in [
            "0",
            "",
            "   ",
            "-2",
            "4.5",
            "four",
            "0x4",
            "18446744073709551616",
        ] {
            assert_eq!(parse_threads(Some(bad)), None, "input {bad:?}");
        }
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn num_threads_never_zero_even_when_env_is_hostile() {
        for bad in ["0", "", "garbage"] {
            std::env::set_var("CTXRANK_THREADS", bad);
            assert!(num_threads() >= 1, "CTXRANK_THREADS={bad:?}");
        }
        std::env::remove_var("CTXRANK_THREADS");
    }
}
