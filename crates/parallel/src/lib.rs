//! Deterministic data-parallel primitives for the experiment and
//! ranking hot paths.
//!
//! Everything here is built on `std::thread::scope` plus an atomic
//! cursor: workers repeatedly claim the next chunk of indices, compute
//! results, and write each result into its input's slot. That gives
//! work-stealing-style load balancing (a worker stuck on a heavy item
//! does not delay the others' progress through the queue) while keeping
//! output order — and therefore every downstream consumer — identical
//! to the sequential loop, element for element.
//!
//! The pool size comes from [`num_threads`]: the `CTXRANK_THREADS`
//! environment variable when set, otherwise
//! `std::thread::available_parallelism()`. With one thread, `par_map`
//! degenerates to a plain in-place map on the calling thread, so the
//! serial and parallel code paths run the exact same closure either
//! way.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count: `CTXRANK_THREADS` if set to a usable value, else the
/// machine's available parallelism. A value of `0`, an empty string, or
/// garbage never reaches callers — every pool in the workspace (and the
/// serving layer's worker threads) sizes itself through here, so the
/// override must degrade to the default rather than to zero workers.
pub fn num_threads() -> usize {
    parse_threads(std::env::var("CTXRANK_THREADS").ok().as_deref())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Interpret a `CTXRANK_THREADS` value: `Some(n)` only for a parseable
/// integer >= 1, `None` (fall back to the default) for unset, empty,
/// zero, negative, or non-numeric input.
pub fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// How many items each claim takes. Small enough to balance skewed
/// workloads (one long document, many short ones), large enough that
/// the atomic traffic is noise.
const CHUNK: usize = 8;

/// Map `f` over `items`, in parallel, preserving order.
///
/// `threads == 1` (or a single item) runs inline on the caller's
/// thread. Results land at the same index as their input, so the output
/// is byte-identical to `items.iter().map(f).collect()` regardless of
/// thread count or scheduling.
///
/// Panics in `f` propagate to the caller once all workers stop.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }

    // Collect into index-addressed slots so claim order can't reorder
    // the output.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cursor = AtomicUsize::new(0);

    {
        // Hand each worker a disjoint view of the slots via raw parts;
        // disjointness is guaranteed by the unique chunk claims.
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        let workers = threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let slots_ptr = &slots_ptr;
                    loop {
                        let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + CHUNK).min(n);
                        for (i, item) in items[start..end].iter().enumerate() {
                            let out = f(item);
                            // SAFETY: index `start + i` is claimed by
                            // exactly one worker (fetch_add hands out
                            // disjoint ranges) and `slots` outlives the
                            // scope.
                            unsafe { *slots_ptr.0.add(start + i) = Some(out) };
                        }
                    }
                });
            }
        });
    }

    slots
        .into_iter()
        .map(|s| s.expect("par_map: worker skipped a slot"))
        .collect()
}

/// Run independent thunks concurrently, returning results in argument
/// order. A convenience wrapper for "a handful of heterogeneous jobs"
/// (e.g. one relevance model per mining resource).
pub fn join_all<R: Send>(threads: usize, jobs: Vec<Box<dyn FnOnce() -> R + Send + '_>>) -> Vec<R> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs.into_iter().map(|j| scope.spawn(j)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join_all: worker panicked"))
            .collect()
    })
}

/// Wrapper making a raw pointer `Sync` for the scoped-thread pattern
/// above; sound only because claimed index ranges never overlap.
struct SendPtr<T>(*mut T);
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let parallel = par_map(threads, &items, |x| x * x + 1);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(par_map(4, &empty, |x| x + 1), Vec::<u32>::new());
        assert_eq!(par_map(4, &[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn unbalanced_items_keep_order() {
        // Heavy items early: chunk claiming must not reorder output.
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(4, &items, |&i| {
            let spins = if i < 8 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for s in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn join_all_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..5usize)
            .map(|i| Box::new(move || i * 10) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(join_all(4, jobs), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn num_threads_env_override() {
        std::env::set_var("CTXRANK_THREADS", "3");
        assert_eq!(num_threads(), 3);
        std::env::set_var("CTXRANK_THREADS", "bogus");
        assert!(num_threads() >= 1);
        std::env::remove_var("CTXRANK_THREADS");
        assert!(num_threads() >= 1);
    }

    #[test]
    fn parse_threads_accepts_only_usable_counts() {
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some("16")), Some(16));
        assert_eq!(parse_threads(Some("  8 ")), Some(8));
    }

    #[test]
    fn parse_threads_falls_back_on_zero_empty_or_garbage() {
        for bad in [
            "0",
            "",
            "   ",
            "-2",
            "4.5",
            "four",
            "0x4",
            "18446744073709551616",
        ] {
            assert_eq!(parse_threads(Some(bad)), None, "input {bad:?}");
        }
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn num_threads_never_zero_even_when_env_is_hostile() {
        for bad in ["0", "", "garbage"] {
            std::env::set_var("CTXRANK_THREADS", bad);
            assert!(num_threads() >= 1, "CTXRANK_THREADS={bad:?}");
        }
        std::env::remove_var("CTXRANK_THREADS");
    }
}
