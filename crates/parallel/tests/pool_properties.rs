//! Property tests for the pooled scheduler: for every thread count and
//! chunk-sensitive workload shape, `par_map`/`par_map_exact`/`join_all`
//! must produce output identical to the sequential loop.

use ctxrank_parallel::{join_all, par_map, par_map_exact};
use proptest::prelude::*;

/// A workload whose per-item cost depends on the item, so chunk
/// boundaries and stealing actually matter: `skew` concentrates heavy
/// items at the front, back, or scattered.
fn spin(i: usize, n: usize, skew: u8) -> u64 {
    let heavy = match skew % 3 {
        0 => i < 4,                // heavy head: early segments lag
        1 => i.is_multiple_of(17), // scattered spikes
        _ => i + 4 >= n,           // heavy tail: stealing at the end
    };
    let spins = if heavy { 5_000 } else { 5 };
    let mut acc = i as u64 ^ u64::from(skew);
    for s in 0..spins {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
    }
    acc
}

proptest! {
    #[test]
    fn par_map_equals_serial_across_thread_counts(
        n in 0usize..600,
        threads in 1usize..=32,
        skew in 0u8..=5,
    ) {
        let items: Vec<usize> = (0..n).collect();
        let serial: Vec<u64> = items.iter().map(|&i| spin(i, n, skew)).collect();
        let pooled = par_map(threads, &items, |&i| spin(i, n, skew));
        prop_assert_eq!(&pooled, &serial);
    }

    #[test]
    fn par_map_exact_equals_serial_across_fan_outs(
        n in 0usize..600,
        fan_out in 2usize..=24,
        skew in 0u8..=5,
    ) {
        // Bypasses the hardware cap: exercises segments, chunk claims
        // and stealing even on a single-core host.
        let items: Vec<usize> = (0..n).collect();
        let serial: Vec<u64> = items.iter().map(|&i| spin(i, n, skew)).collect();
        let pooled = par_map_exact(fan_out, &items, |&i| spin(i, n, skew));
        prop_assert_eq!(&pooled, &serial);
    }

    #[test]
    fn chunk_sensitive_sizes_keep_order(
        // Sizes straddling segment/chunk boundaries: k*fan_out ± 1.
        base in 1usize..=40,
        fan_out in 2usize..=16,
        delta in 0usize..=2,
    ) {
        let n = (base * fan_out + delta).saturating_sub(1);
        let items: Vec<usize> = (0..n).collect();
        let out = par_map_exact(fan_out, &items, |&i| i);
        prop_assert_eq!(out, items);
    }

    #[test]
    fn join_all_equals_serial(
        jobs in 0usize..=12,
        threads in 1usize..=8,
    ) {
        let boxed: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..jobs)
            .map(|i| Box::new(move || spin(i, jobs, 1)) as Box<dyn FnOnce() -> u64 + Send>)
            .collect();
        let serial: Vec<u64> = (0..jobs).map(|i| spin(i, jobs, 1)).collect();
        prop_assert_eq!(join_all(threads, boxed), serial);
    }
}
