//! Property tests for the delta-varint block codec: encode→decode is
//! the identity on every strictly-increasing doc id sequence, including
//! the empty list, single entries, and maximum-delta runs.

use ctxrank_index::{decode_all, decode_block, encode_blocks, BLOCK};
use proptest::prelude::*;

/// Strictly-increasing doc ids from (start, gap) pairs.
fn docs_from(parts: &[(u32, u32)]) -> Vec<u32> {
    let mut docs = Vec::with_capacity(parts.len());
    let mut cur = 0u64;
    for &(start, gap) in parts {
        cur += u64::from(start % 97) + u64::from(gap) + 1;
        if cur > u64::from(u32::MAX) {
            break;
        }
        docs.push(cur as u32);
    }
    docs
}

proptest! {
    #[test]
    fn roundtrip_identity(
        parts in prop::collection::vec((0u32..10_000, 0u32..50_000), 0..700),
    ) {
        let docs = docs_from(&parts);
        let (bytes, skips) = encode_blocks(&docs);
        prop_assert_eq!(skips.len(), docs.len().div_ceil(BLOCK));
        prop_assert_eq!(decode_all(&bytes, &skips, docs.len()), docs);
    }

    #[test]
    fn per_block_decode_matches_slices(
        parts in prop::collection::vec((0u32..100, 0u32..300), 1..600),
    ) {
        let docs = docs_from(&parts);
        let (bytes, skips) = encode_blocks(&docs);
        let mut buf = [0u32; BLOCK];
        for (b, skip) in skips.iter().enumerate() {
            let len = decode_block(&bytes, &skips, docs.len(), b, &mut buf);
            let expect = &docs[b * BLOCK..(b * BLOCK + len).min(docs.len())];
            prop_assert_eq!(len, expect.len());
            prop_assert_eq!(&buf[..len], expect);
            prop_assert_eq!(skip.first, expect[0]);
            prop_assert_eq!(skip.last, *expect.last().unwrap());
        }
    }

    #[test]
    fn max_delta_runs_roundtrip(deltas in prop::collection::vec(Just(u32::MAX >> 1), 0..5)) {
        // Deltas of ~2^31 force the 5-byte varint path and straddle the
        // unrolled fast loop.
        let mut docs = vec![0u32];
        let mut cur = 0u64;
        for &d in &deltas {
            cur += u64::from(d);
            if cur > u64::from(u32::MAX) {
                break;
            }
            docs.push(cur as u32);
        }
        let (bytes, skips) = encode_blocks(&docs);
        prop_assert_eq!(decode_all(&bytes, &skips, docs.len()), docs);
    }

    #[test]
    fn empty_and_single(doc in 0u32..=u32::MAX) {
        let (bytes, skips) = encode_blocks(&[]);
        prop_assert!(bytes.is_empty());
        prop_assert!(skips.is_empty());
        prop_assert_eq!(decode_all(&bytes, &skips, 0), Vec::<u32>::new());

        let (bytes, skips) = encode_blocks(&[doc]);
        prop_assert!(bytes.is_empty(), "single entry lives in the skip entry");
        prop_assert_eq!(skips.len(), 1);
        prop_assert_eq!(decode_all(&bytes, &skips, 1), vec![doc]);
    }
}
