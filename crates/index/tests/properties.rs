//! Property-based tests for the inverted index.

use ctxrank_index::{DocId, IndexBuilder};
use proptest::prelude::*;

fn docs_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(prop::collection::vec("[a-e]{1,3}", 1..30), 1..20)
}

proptest! {
    /// Postings are consistent with the stored documents: doc_freq
    /// matches a naive scan, and tf matches the per-document count.
    #[test]
    fn postings_match_naive_scan(docs in docs_strategy()) {
        let mut b = IndexBuilder::new();
        for d in &docs {
            b.add_document(&d.join(" "));
        }
        let idx = b.build();
        // Check every distinct term of the corpus.
        let mut vocab: Vec<&String> = docs.iter().flatten().collect();
        vocab.sort();
        vocab.dedup();
        for term in vocab {
            let naive_df = docs.iter().filter(|d| d.contains(term)).count();
            prop_assert_eq!(idx.doc_freq(term), naive_df);
            let postings = idx.postings(term).expect("term indexed");
            for (i, d) in docs.iter().enumerate() {
                let naive_tf = d.iter().filter(|t| *t == term).count();
                prop_assert_eq!(postings.tf(DocId(i as u32)), naive_tf);
            }
        }
    }

    /// Phrase counts match a naive windows() scan.
    #[test]
    fn phrase_count_matches_naive(docs in docs_strategy(),
                                  phrase in prop::collection::vec("[a-e]{1,3}", 1..4)) {
        let mut b = IndexBuilder::new();
        for d in &docs {
            b.add_document(&d.join(" "));
        }
        let idx = b.build();
        let naive = docs
            .iter()
            .filter(|d| {
                d.len() >= phrase.len()
                    && d.windows(phrase.len()).any(|w| w == phrase.as_slice())
            })
            .count();
        prop_assert_eq!(idx.phrase_count(&phrase), naive);
    }

    /// Search results are sorted by score and contain only documents
    /// that have at least one query term.
    #[test]
    fn search_results_sane(docs in docs_strategy(),
                           query in prop::collection::vec("[a-e]{1,3}", 1..4)) {
        let mut b = IndexBuilder::new();
        for d in &docs {
            b.add_document(&d.join(" "));
        }
        let idx = b.build();
        let hits = idx.search(&query, docs.len());
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            let doc = &docs[h.doc.0 as usize];
            prop_assert!(query.iter().any(|q| doc.contains(q)));
        }
    }

    /// idf is non-increasing in document frequency.
    #[test]
    fn idf_monotone(docs in docs_strategy()) {
        let mut b = IndexBuilder::new();
        for d in &docs {
            b.add_document(&d.join(" "));
        }
        let idx = b.build();
        let mut by_df: Vec<(usize, f64)> = idx
            .terms()
            .map(|t| (idx.doc_freq(t), idx.idf(t)))
            .collect();
        by_df.sort_by_key(|p| p.0);
        for w in by_df.windows(2) {
            prop_assert!(w[0].1 >= w[1].1 - 1e-12);
        }
    }

    /// Snippets always contain the token at the match position.
    #[test]
    fn snippet_contains_match(doc in prop::collection::vec("[a-e]{1,3}", 1..40),
                              pos in 0usize..40, context in 0usize..6) {
        let mut b = IndexBuilder::new();
        let id = b.add_document(&doc.join(" "));
        let idx = b.build();
        let pos = pos.min(doc.len() - 1);
        let snippet = idx.snippet(id, pos as u32, context);
        prop_assert!(
            snippet.split(' ').any(|t| t == doc[pos]),
            "snippet {:?} missing token {:?}", snippet, doc[pos]
        );
    }
}
