//! Snippet extraction.
//!
//! The relevance miner treats "the snippets retrieved for the first
//! hundred results" as one big document (§IV-B). A snippet here is a
//! window of tokens centred on the first match position of the query in
//! the document — the same short summary a search engine shows under each
//! result URL.

use crate::postings::DocId;
use crate::Index;

/// Default number of tokens either side of the match.
pub const DEFAULT_CONTEXT_TOKENS: usize = 12;

impl Index {
    /// Extract a snippet of `context` tokens on each side of the token at
    /// `match_pos` in `doc`. Returns an empty string for an empty document.
    pub fn snippet(&self, doc: DocId, match_pos: u32, context: usize) -> String {
        let stored = self.doc(doc);
        if stored.is_empty() {
            return String::new();
        }
        let pos = (match_pos as usize).min(stored.len() - 1);
        let from = pos.saturating_sub(context);
        let to = (pos + context + 1).min(stored.len());
        let start_byte = stored.offsets[from].0;
        let end_byte = stored.offsets[to - 1].1;
        stored.text[start_byte..end_byte].to_string()
    }

    /// Run a phrase search and return the top-`k` snippets, one per hit —
    /// the exact resource the relevance miner consumes.
    pub fn phrase_snippets(&self, terms: &[String], k: usize, context: usize) -> Vec<String> {
        self.phrase_search(terms, k)
            .into_iter()
            .map(|hit| self.snippet(hit.doc, hit.first_match, context))
            .collect()
    }
}

/// Free-function convenience wrapper around [`Index::snippet`].
pub fn snippet(index: &Index, doc: DocId, match_pos: u32, context: usize) -> String {
    index.snippet(doc, match_pos, context)
}

#[cfg(test)]
mod tests {
    use crate::IndexBuilder;

    fn terms(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn snippet_centres_on_match() {
        let mut b = IndexBuilder::new();
        let doc = b.add_document("one two three four five six seven eight nine ten");
        let idx = b.build();
        let s = idx.snippet(doc, 4, 1);
        assert_eq!(s, "four five six");
    }

    #[test]
    fn snippet_clamps_at_edges() {
        let mut b = IndexBuilder::new();
        let doc = b.add_document("alpha beta gamma");
        let idx = b.build();
        assert_eq!(idx.snippet(doc, 0, 5), "alpha beta gamma");
        assert_eq!(idx.snippet(doc, 2, 5), "alpha beta gamma");
        // Out-of-range position clamps to the last token.
        assert_eq!(idx.snippet(doc, 99, 0), "gamma");
    }

    #[test]
    fn empty_document_snippet() {
        let mut b = IndexBuilder::new();
        let doc = b.add_document("!!! ...");
        let idx = b.build();
        assert_eq!(idx.snippet(doc, 0, 3), "");
    }

    #[test]
    fn phrase_snippets_contain_phrase() {
        let mut b = IndexBuilder::new();
        b.add_document("the summit on global warming opened today in oslo");
        b.add_document("scientists warn global warming accelerates rapidly");
        b.add_document("unrelated content about sports");
        let idx = b.build();
        let snippets = idx.phrase_snippets(&terms("global warming"), 10, 3);
        assert_eq!(snippets.len(), 2);
        for s in &snippets {
            assert!(s.to_lowercase().contains("global warming"), "snippet: {s}");
        }
    }

    #[test]
    fn phrase_snippets_respect_k() {
        let mut b = IndexBuilder::new();
        for i in 0..20 {
            b.add_document(&format!("doc {i} mentions red car today"));
        }
        let idx = b.build();
        assert_eq!(idx.phrase_snippets(&terms("red car"), 5, 2).len(), 5);
    }
}
