//! Ranked retrieval, conjunctive queries and phrase queries.

use crate::postings::{DocId, Postings};
use crate::tfidf::tf_idf_weight;
use crate::Index;

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    pub doc: DocId,
    /// tf·idf relevance score (higher is better).
    pub score: f64,
    /// Token position of the first query-term match in the document —
    /// used for snippet extraction.
    pub first_match: u32,
}

/// In-place sorted intersection of `docs` with a block-coded postings
/// list. Both sides are ascending; the cursor gallops block-to-block
/// over the skip table and then inside the decoded block (doubling
/// probes followed by a binary search over the bracketed range), so
/// runtime is `O(n log(m/n))` when the list is much longer than `docs`
/// — whole blocks that bracket no candidate are never decoded — and
/// degrades gracefully to a linear merge when the lists are similar in
/// length.
fn intersect_galloping(docs: &mut Vec<DocId>, list: &Postings) {
    let mut cur = list.cursor();
    let mut keep = 0usize;
    for i in 0..docs.len() {
        let d = docs[i];
        match cur.seek(d) {
            Some(r) if r.doc == d => {
                docs[keep] = d;
                keep += 1;
            }
            Some(_) => {}
            None => break,
        }
    }
    docs.truncate(keep);
}

/// Hit ordering: score descending, ties broken by document id for
/// determinism.
fn hit_order(a: &SearchHit, b: &SearchHit) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.doc.cmp(&b.doc))
}

/// Keep the best `k` hits, sorted. Uses quickselect to avoid sorting the
/// full accumulator when only a small prefix is wanted.
fn top_k(mut hits: Vec<SearchHit>, k: usize) -> Vec<SearchHit> {
    if k == 0 {
        return Vec::new();
    }
    if hits.len() > k {
        hits.select_nth_unstable_by(k - 1, hit_order);
        hits.truncate(k);
    }
    hits.sort_by(hit_order);
    hits
}

/// Gather-side merge for partitioned retrieval: the best `k` hits of
/// several per-partition top-k lists. When the partitions score
/// *disjoint* document/item sets — each item wholly owned by one
/// partition, the shape `partition_snapshot` guarantees for concepts —
/// merging per-partition top-k lists is exactly the global top-k: an
/// item in the global answer is in its owner's local top-k (its local
/// rank can only be better), so no candidate is lost to truncation.
pub fn merge_top_k(parts: impl IntoIterator<Item = Vec<SearchHit>>, k: usize) -> Vec<SearchHit> {
    let mut all: Vec<SearchHit> = Vec::new();
    for part in parts {
        all.extend(part);
    }
    top_k(all, k)
}

/// Dense, mergeable partial-score accumulator — the per-shard half of
/// the accumulate-then-top-k search. One partition folds only *its*
/// query terms' postings in ([`Index::accumulate_term_range`]); the
/// gatherer sums accumulators document-wise and resolves top-k once.
///
/// Merging sums per-document scores in merge-call order, which is not
/// the same float-addition order as a single-process pass over the
/// query — partial sums can differ in the last ulp when a document
/// matches terms in more than one partition. This is inherent to
/// splitting a sum; the serving-layer concept partition sidesteps it by
/// making ownership whole-candidate (no score is ever split), which is
/// what makes the router's merged `/rank` bit-identical.
#[derive(Debug, Clone)]
pub struct SearchAccumulator {
    /// Per-document `(summed score, earliest match position)`.
    acc: Vec<(f64, u32)>,
    seen: Vec<bool>,
    touched: Vec<DocId>,
}

impl SearchAccumulator {
    /// An empty accumulator over a corpus of `num_docs` documents.
    pub fn new(num_docs: usize) -> Self {
        Self {
            acc: vec![(0.0, u32::MAX); num_docs],
            seen: vec![false; num_docs],
            touched: Vec::new(),
        }
    }

    /// Fold one scored posting in.
    fn add(&mut self, doc: DocId, weight: f64, first_pos: u32) {
        let i = doc.0 as usize;
        if !self.seen[i] {
            self.seen[i] = true;
            self.touched.push(doc);
        }
        let entry = &mut self.acc[i];
        entry.0 += weight;
        entry.1 = entry.1.min(first_pos);
    }

    /// Merge another partition's partial scores in: per-document scores
    /// sum, snippet anchors take the earliest match.
    pub fn merge(&mut self, other: &SearchAccumulator) {
        assert_eq!(
            self.acc.len(),
            other.acc.len(),
            "accumulators must cover the same corpus"
        );
        for &doc in &other.touched {
            let i = doc.0 as usize;
            if !self.seen[i] {
                self.seen[i] = true;
                self.touched.push(doc);
            }
            let (score, first) = other.acc[i];
            self.acc[i].0 += score;
            self.acc[i].1 = self.acc[i].1.min(first);
        }
    }

    /// Documents with a nonzero partial score so far.
    pub fn touched_len(&self) -> usize {
        self.touched.len()
    }

    /// Resolve the accumulated scores to the best `k` hits.
    pub fn into_top_k(self, k: usize) -> Vec<SearchHit> {
        let acc = self.acc;
        let hits: Vec<SearchHit> = self
            .touched
            .into_iter()
            .map(|doc| {
                let (score, first_match) = acc[doc.0 as usize];
                SearchHit {
                    doc,
                    score,
                    first_match,
                }
            })
            .collect();
        top_k(hits, k)
    }
}

impl Index {
    /// Disjunctive ("regular") tf·idf search: documents matching any query
    /// term, ranked by summed tf·idf, top `k` returned. Ties are broken by
    /// document id for determinism.
    pub fn search(&self, terms: &[String], k: usize) -> Vec<SearchHit> {
        // The single-partition case of accumulate-then-top-k: same
        // posting fold, same query-order float summation as ever.
        self.accumulate_term_range(terms, 0, u32::MAX).into_top_k(k)
    }

    /// Partial disjunctive scores from only the query terms whose
    /// interned id falls in `lo..hi` — the index-side analogue of the
    /// snapshot's TID-range sharding. Postings of out-of-range terms
    /// are never decoded, so a partition does work proportional to the
    /// slice it owns. Merge a disjoint cover of the id space with
    /// [`SearchAccumulator::merge`] and resolve once to reproduce
    /// [`Index::search`]'s answer.
    pub fn accumulate_term_range(&self, terms: &[String], lo: u32, hi: u32) -> SearchAccumulator {
        // Dense per-document accumulator: postings carry dense doc ids,
        // so scoring indexes a flat array instead of hashing each hit.
        let mut acc = SearchAccumulator::new(self.num_docs());
        for term in terms {
            if let Some(id) = self.term_id(term) {
                if id.0 < lo || id.0 >= hi {
                    continue;
                }
                let idf = self.idf_id(id);
                for p in self.postings_id(id).iter() {
                    acc.add(p.doc, tf_idf_weight(p.positions.len(), idf), p.positions[0]);
                }
            }
        }
        acc
    }

    /// Number of documents that match *all* query terms (conjunctive
    /// count — the "regular query" result count the paper experimented
    /// with during feature selection).
    pub fn conjunctive_count(&self, terms: &[String]) -> usize {
        match self.candidate_docs(terms) {
            Some(docs) => docs.len(),
            None => 0,
        }
    }

    /// Number of documents containing `terms` as a contiguous phrase —
    /// the `searchengine_phrase` feature (Table I, feature 4).
    pub fn phrase_count(&self, terms: &[String]) -> usize {
        match self.phrase_postings(terms) {
            Some(list) => list.len(),
            None => 0,
        }
    }

    /// Ranked phrase search: documents containing the contiguous phrase,
    /// scored by phrase frequency times the summed idf of the phrase
    /// terms; top `k` returned.
    pub fn phrase_search(&self, terms: &[String], k: usize) -> Vec<SearchHit> {
        let matches = match self.phrase_postings(terms) {
            Some(m) => m,
            None => return Vec::new(),
        };
        let phrase_idf: f64 = terms.iter().map(|t| self.idf(t)).sum();
        let hits: Vec<SearchHit> = matches
            .into_iter()
            .map(|(doc, positions)| SearchHit {
                doc,
                score: tf_idf_weight(positions.len(), phrase_idf),
                first_match: positions[0],
            })
            .collect();
        top_k(hits, k)
    }

    /// Documents containing all terms (intersection of postings), or
    /// `None` when any term is missing from the index or the query is
    /// empty.
    fn candidate_docs(&self, terms: &[String]) -> Option<Vec<DocId>> {
        if terms.is_empty() {
            return None;
        }
        let mut lists: Vec<&crate::Postings> = Vec::with_capacity(terms.len());
        for t in terms {
            lists.push(self.postings(t)?);
        }
        // Intersect starting from the shortest list; each further list is
        // merged with a galloping scan that adapts to skew (near-linear
        // for similar lengths, logarithmic probes when one side is much
        // longer).
        lists.sort_by_key(|p| p.doc_count());
        let mut docs: Vec<DocId> = lists[0].iter().map(|p| p.doc).collect();
        for list in &lists[1..] {
            intersect_galloping(&mut docs, list);
            if docs.is_empty() {
                break;
            }
        }
        Some(docs)
    }

    /// For each document containing the contiguous phrase, the sorted
    /// token positions of the phrase's first term.
    fn phrase_postings(&self, terms: &[String]) -> Option<Vec<(DocId, Vec<u32>)>> {
        if terms.is_empty() {
            return None;
        }
        if terms.len() == 1 {
            return Some(
                self.postings(&terms[0])?
                    .iter()
                    .map(|p| (p.doc, p.positions.to_vec()))
                    .collect(),
            );
        }
        let docs = self.candidate_docs(terms)?;
        let lists: Vec<&crate::Postings> = terms
            .iter()
            .map(|t| self.postings(t).expect("candidate_docs verified presence"))
            .collect();
        // One monotone cursor per term: the intersection is ascending,
        // so each document lookup resumes where the last one stopped
        // and never re-decodes a block.
        let mut cursors: Vec<_> = lists.iter().map(|l| l.cursor()).collect();
        let mut out = Vec::new();
        for doc in docs {
            let entries: Vec<crate::PostingRef<'_>> = cursors
                .iter_mut()
                .map(|c| c.seek(doc).expect("doc in intersection"))
                .collect();
            debug_assert!(entries.iter().all(|e| e.doc == doc));
            let mut starts = Vec::new();
            for &p0 in entries[0].positions {
                let aligned = entries[1..]
                    .iter()
                    .enumerate()
                    .all(|(i, e)| e.positions.binary_search(&(p0 + i as u32 + 1)).is_ok());
                if aligned {
                    starts.push(p0);
                }
            }
            if !starts.is_empty() {
                out.push((doc, starts));
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::IndexBuilder;

    fn terms(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn build(docs: &[&str]) -> crate::Index {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add_document(d);
        }
        b.build()
    }

    #[test]
    fn search_ranks_by_tfidf() {
        let idx = build(&[
            "cuba cuba cuba policy",
            "cuba appears once here",
            "nothing relevant at all",
        ]);
        let hits = idx.search(&terms("cuba"), 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].doc.0, 0);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn search_truncates_to_k() {
        let idx = build(&["a x", "a y", "a z"]);
        assert_eq!(idx.search(&terms("a"), 2).len(), 2);
    }

    #[test]
    fn phrase_count_requires_adjacency() {
        let idx = build(&[
            "global warming is real",
            "warming global order reversed",
            "global economic warming gap",
        ]);
        assert_eq!(idx.phrase_count(&terms("global warming")), 1);
        assert_eq!(idx.conjunctive_count(&terms("global warming")), 3);
    }

    #[test]
    fn phrase_count_single_term() {
        let idx = build(&["alpha beta", "beta gamma"]);
        assert_eq!(idx.phrase_count(&terms("beta")), 2);
    }

    #[test]
    fn phrase_three_terms() {
        let idx = build(&[
            "president of the united states of america",
            "united states senate",
            "the states united once",
        ]);
        assert_eq!(idx.phrase_count(&terms("united states")), 2);
        assert_eq!(idx.phrase_count(&terms("united states senate")), 1);
    }

    #[test]
    fn phrase_search_scores_by_frequency() {
        let idx = build(&["new york new york so nice", "new york once"]);
        let hits = idx.phrase_search(&terms("new york"), 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].doc.0, 0);
        assert_eq!(hits[0].first_match, 0);
    }

    #[test]
    fn missing_term_empty_results() {
        let idx = build(&["something here"]);
        assert_eq!(idx.phrase_count(&terms("absent phrase")), 0);
        assert!(idx.phrase_search(&terms("absent"), 5).is_empty());
        assert_eq!(idx.conjunctive_count(&terms("something absent")), 0);
    }

    #[test]
    fn empty_query() {
        let idx = build(&["something here"]);
        assert!(idx.search(&[], 5).is_empty());
        assert_eq!(idx.phrase_count(&[]), 0);
    }

    #[test]
    fn galloping_intersection_matches_naive() {
        use crate::postings::{DocId, PostingsBuilder};
        // Deterministic pseudo-random doc id sets of very different
        // sizes; the big side spans many coded blocks so the cursor's
        // skip-table galloping is exercised, not just in-block search.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut next = move |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        for (n_small, n_big) in [(0, 50), (3, 1000), (40, 45), (100, 100), (7, 8000)] {
            let mut small: Vec<u32> = (0..n_small).map(|_| next(10_000) as u32).collect();
            small.sort_unstable();
            small.dedup();
            let mut big: Vec<u32> = (0..n_big).map(|_| next(10_000) as u32).collect();
            // Force some overlap.
            big.extend(small.iter().copied().step_by(2));
            big.sort_unstable();
            big.dedup();
            let mut builder = PostingsBuilder::default();
            for &d in &big {
                builder.push(DocId(d), 0);
            }
            let list = builder.freeze();
            let expect: Vec<DocId> = small
                .iter()
                .filter(|d| big.binary_search(d).is_ok())
                .map(|&d| DocId(d))
                .collect();
            let mut docs: Vec<DocId> = small.iter().map(|&d| DocId(d)).collect();
            super::intersect_galloping(&mut docs, &list);
            assert_eq!(docs, expect, "n_small={n_small} n_big={n_big}");
        }
    }

    #[test]
    fn top_k_selection_matches_full_sort() {
        let idx = build(&[
            "apple banana",
            "apple",
            "apple apple",
            "banana banana apple",
            "apple cherry",
            "cherry apple apple",
            "banana",
            "apple date",
        ]);
        let q = terms("apple banana");
        let full = idx.search(&q, usize::MAX);
        for k in 0..=full.len() + 2 {
            let topk = idx.search(&q, k);
            assert_eq!(topk.len(), full.len().min(k));
            assert_eq!(&full[..topk.len()], &topk[..], "k={k}");
        }
    }

    #[test]
    fn term_range_cover_merges_back_to_full_search() {
        let idx = build(&[
            "apple banana cherry date",
            "apple apple banana",
            "cherry cherry cherry",
            "banana date elderberry",
            "fig grape apple",
            "date fig banana cherry",
        ]);
        let q = terms("apple banana cherry date fig grape absent");
        let full = idx.search(&q, usize::MAX);
        let n = idx.num_terms() as u32;
        for slices in [1u32, 2, 3, 5, n + 3] {
            let width = n.div_ceil(slices).max(1);
            let mut merged = super::SearchAccumulator::new(idx.num_docs());
            for s in 0..slices {
                let lo = s * width;
                merged.merge(&idx.accumulate_term_range(&q, lo, lo.saturating_add(width)));
            }
            let got = merged.into_top_k(usize::MAX);
            assert_eq!(got.len(), full.len(), "{slices} slices");
            // Same hit set and ordering; scores equal up to the float
            // summation-order caveat on `SearchAccumulator::merge`.
            for (g, f) in got.iter().zip(&full) {
                assert_eq!(g.doc, f.doc, "{slices} slices");
                assert_eq!(g.first_match, f.first_match, "{slices} slices");
                assert!((g.score - f.score).abs() < 1e-12, "{slices} slices");
            }
        }
    }

    #[test]
    fn single_term_partition_is_bit_identical() {
        // With one query term, no document's score is split across
        // partitions, so the merge is exact — the analogue of the
        // router's whole-candidate concept ownership.
        let idx = build(&["solo solo here", "solo once", "unrelated text", "solo solo"]);
        let q = terms("solo");
        let full = idx.search(&q, usize::MAX);
        let n = idx.num_terms() as u32;
        let mut merged = super::SearchAccumulator::new(idx.num_docs());
        for lo in 0..n {
            merged.merge(&idx.accumulate_term_range(&q, lo, lo + 1));
        }
        assert_eq!(merged.into_top_k(usize::MAX), full);
    }

    #[test]
    fn merge_top_k_of_disjoint_partitions_equals_global_top_k() {
        let idx = build(&[
            "apple banana",
            "apple",
            "apple apple",
            "banana banana apple",
            "apple cherry",
            "cherry apple apple",
            "banana",
            "apple date",
        ]);
        let q = terms("apple banana cherry");
        let full_hits = idx.search(&q, usize::MAX);
        for parts in 1..=4usize {
            // Deal hits round-robin into disjoint partitions, truncate
            // each to its local top-k, and merge.
            for k in 0..=full_hits.len() + 1 {
                let mut dealt: Vec<Vec<super::SearchHit>> = vec![Vec::new(); parts];
                for (i, h) in full_hits.iter().enumerate() {
                    dealt[i % parts].push(h.clone());
                }
                let locals = dealt.into_iter().map(|p| super::top_k(p, k));
                let merged = super::merge_top_k(locals, k);
                assert_eq!(merged, idx.search(&q, k), "parts={parts} k={k}");
            }
        }
    }

    #[test]
    fn repeated_phrase_in_one_doc() {
        let idx = build(&["ab cd ab cd ab cd", "other text entirely"]);
        let hits = idx.phrase_search(&terms("ab cd"), 5);
        assert_eq!(hits.len(), 1);
        // Three phrase occurrences: score reflects tf=3.
        assert!(hits[0].score > 0.0);
    }
}
