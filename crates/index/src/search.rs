//! Ranked retrieval, conjunctive queries and phrase queries.

use crate::postings::{DocId, Posting};
use crate::tfidf::tf_idf_weight;
use crate::Index;

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    pub doc: DocId,
    /// tf·idf relevance score (higher is better).
    pub score: f64,
    /// Token position of the first query-term match in the document —
    /// used for snippet extraction.
    pub first_match: u32,
}

impl Index {
    /// Disjunctive ("regular") tf·idf search: documents matching any query
    /// term, ranked by summed tf·idf, top `k` returned. Ties are broken by
    /// document id for determinism.
    pub fn search(&self, terms: &[String], k: usize) -> Vec<SearchHit> {
        let mut scores: std::collections::HashMap<DocId, (f64, u32)> =
            std::collections::HashMap::new();
        for term in terms {
            let idf = self.idf(term);
            if let Some(postings) = self.postings(term) {
                for p in postings.iter() {
                    let w = tf_idf_weight(p.positions.len(), idf);
                    let entry = scores.entry(p.doc).or_insert((0.0, u32::MAX));
                    entry.0 += w;
                    entry.1 = entry.1.min(p.positions[0]);
                }
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(doc, (score, first_match))| SearchHit {
                doc,
                score,
                first_match,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }

    /// Number of documents that match *all* query terms (conjunctive
    /// count — the "regular query" result count the paper experimented
    /// with during feature selection).
    pub fn conjunctive_count(&self, terms: &[String]) -> usize {
        match self.candidate_docs(terms) {
            Some(docs) => docs.len(),
            None => 0,
        }
    }

    /// Number of documents containing `terms` as a contiguous phrase —
    /// the `searchengine_phrase` feature (Table I, feature 4).
    pub fn phrase_count(&self, terms: &[String]) -> usize {
        match self.phrase_postings(terms) {
            Some(list) => list.len(),
            None => 0,
        }
    }

    /// Ranked phrase search: documents containing the contiguous phrase,
    /// scored by phrase frequency times the summed idf of the phrase
    /// terms; top `k` returned.
    pub fn phrase_search(&self, terms: &[String], k: usize) -> Vec<SearchHit> {
        let matches = match self.phrase_postings(terms) {
            Some(m) => m,
            None => return Vec::new(),
        };
        let phrase_idf: f64 = terms.iter().map(|t| self.idf(t)).sum();
        let mut hits: Vec<SearchHit> = matches
            .into_iter()
            .map(|(doc, positions)| SearchHit {
                doc,
                score: tf_idf_weight(positions.len(), phrase_idf),
                first_match: positions[0],
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }

    /// Documents containing all terms (intersection of postings), or
    /// `None` when any term is missing from the index or the query is
    /// empty.
    fn candidate_docs(&self, terms: &[String]) -> Option<Vec<DocId>> {
        if terms.is_empty() {
            return None;
        }
        let mut lists: Vec<&crate::Postings> = Vec::with_capacity(terms.len());
        for t in terms {
            lists.push(self.postings(t)?);
        }
        // Intersect starting from the shortest list.
        lists.sort_by_key(|p| p.doc_count());
        let mut docs: Vec<DocId> = lists[0].iter().map(|p| p.doc).collect();
        for list in &lists[1..] {
            docs.retain(|d| list.get(*d).is_some());
            if docs.is_empty() {
                break;
            }
        }
        Some(docs)
    }

    /// For each document containing the contiguous phrase, the sorted
    /// token positions of the phrase's first term.
    fn phrase_postings(&self, terms: &[String]) -> Option<Vec<(DocId, Vec<u32>)>> {
        if terms.is_empty() {
            return None;
        }
        if terms.len() == 1 {
            return Some(
                self.postings(&terms[0])?
                    .iter()
                    .map(|p| (p.doc, p.positions.clone()))
                    .collect(),
            );
        }
        let docs = self.candidate_docs(terms)?;
        let lists: Vec<&crate::Postings> = terms
            .iter()
            .map(|t| self.postings(t).expect("candidate_docs verified presence"))
            .collect();
        let mut out = Vec::new();
        for doc in docs {
            let entries: Vec<&Posting> = lists
                .iter()
                .map(|l| l.get(doc).expect("doc in intersection"))
                .collect();
            let mut starts = Vec::new();
            for &p0 in &entries[0].positions {
                let aligned = entries[1..]
                    .iter()
                    .enumerate()
                    .all(|(i, e)| e.positions.binary_search(&(p0 + i as u32 + 1)).is_ok());
                if aligned {
                    starts.push(p0);
                }
            }
            if !starts.is_empty() {
                out.push((doc, starts));
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::IndexBuilder;

    fn terms(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn build(docs: &[&str]) -> crate::Index {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add_document(d);
        }
        b.build()
    }

    #[test]
    fn search_ranks_by_tfidf() {
        let idx = build(&[
            "cuba cuba cuba policy",
            "cuba appears once here",
            "nothing relevant at all",
        ]);
        let hits = idx.search(&terms("cuba"), 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].doc.0, 0);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn search_truncates_to_k() {
        let idx = build(&["a x", "a y", "a z"]);
        assert_eq!(idx.search(&terms("a"), 2).len(), 2);
    }

    #[test]
    fn phrase_count_requires_adjacency() {
        let idx = build(&[
            "global warming is real",
            "warming global order reversed",
            "global economic warming gap",
        ]);
        assert_eq!(idx.phrase_count(&terms("global warming")), 1);
        assert_eq!(idx.conjunctive_count(&terms("global warming")), 3);
    }

    #[test]
    fn phrase_count_single_term() {
        let idx = build(&["alpha beta", "beta gamma"]);
        assert_eq!(idx.phrase_count(&terms("beta")), 2);
    }

    #[test]
    fn phrase_three_terms() {
        let idx = build(&[
            "president of the united states of america",
            "united states senate",
            "the states united once",
        ]);
        assert_eq!(idx.phrase_count(&terms("united states")), 2);
        assert_eq!(idx.phrase_count(&terms("united states senate")), 1);
    }

    #[test]
    fn phrase_search_scores_by_frequency() {
        let idx = build(&["new york new york so nice", "new york once"]);
        let hits = idx.phrase_search(&terms("new york"), 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].doc.0, 0);
        assert_eq!(hits[0].first_match, 0);
    }

    #[test]
    fn missing_term_empty_results() {
        let idx = build(&["something here"]);
        assert_eq!(idx.phrase_count(&terms("absent phrase")), 0);
        assert!(idx.phrase_search(&terms("absent"), 5).is_empty());
        assert_eq!(idx.conjunctive_count(&terms("something absent")), 0);
    }

    #[test]
    fn empty_query() {
        let idx = build(&["something here"]);
        assert!(idx.search(&[], 5).is_empty());
        assert_eq!(idx.phrase_count(&[]), 0);
    }

    #[test]
    fn repeated_phrase_in_one_doc() {
        let idx = build(&["ab cd ab cd ab cd", "other text entirely"]);
        let hits = idx.phrase_search(&terms("ab cd"), 5);
        assert_eq!(hits.len(), 1);
        // Three phrase occurrences: score reflects tf=3.
        assert!(hits[0].score > 0.0);
    }
}
