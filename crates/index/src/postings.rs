//! Positional postings lists.

/// Identifier of a document inside one [`crate::Index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

/// One document's entry in a postings list: the document id and the sorted
/// token positions at which the term occurs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    pub doc: DocId,
    pub positions: Vec<u32>,
}

/// A term's postings: one [`Posting`] per containing document, sorted by
/// document id (an invariant maintained by construction — documents are
/// indexed in id order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Postings {
    entries: Vec<Posting>,
}

impl Postings {
    /// Record an occurrence of the term at `pos` in `doc`. Documents must
    /// be pushed in non-decreasing id order with non-decreasing positions
    /// (the index builder guarantees this).
    pub(crate) fn push(&mut self, doc: DocId, pos: u32) {
        match self.entries.last_mut() {
            Some(last) if last.doc == doc => {
                debug_assert!(last.positions.last().is_none_or(|&p| p <= pos));
                last.positions.push(pos);
            }
            _ => {
                debug_assert!(self.entries.last().is_none_or(|p| p.doc < doc));
                self.entries.push(Posting {
                    doc,
                    positions: vec![pos],
                });
            }
        }
    }

    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        self.entries.len()
    }

    /// Total number of occurrences across all documents.
    pub fn total_count(&self) -> usize {
        self.entries.iter().map(|p| p.positions.len()).sum()
    }

    /// Iterate the per-document entries in document-id order.
    pub fn iter(&self) -> impl Iterator<Item = &Posting> {
        self.entries.iter()
    }

    /// The per-document entries as a sorted slice (for merge-style
    /// intersection algorithms).
    pub fn entries(&self) -> &[Posting] {
        &self.entries
    }

    /// Binary-search for a document's entry.
    pub fn get(&self, doc: DocId) -> Option<&Posting> {
        self.entries
            .binary_search_by_key(&doc, |p| p.doc)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Term frequency in one document.
    pub fn tf(&self, doc: DocId) -> usize {
        self.get(doc).map_or(0, |p| p.positions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_groups_by_document() {
        let mut p = Postings::default();
        p.push(DocId(0), 1);
        p.push(DocId(0), 5);
        p.push(DocId(2), 0);
        assert_eq!(p.doc_count(), 2);
        assert_eq!(p.total_count(), 3);
        assert_eq!(p.tf(DocId(0)), 2);
        assert_eq!(p.tf(DocId(1)), 0);
        assert_eq!(p.tf(DocId(2)), 1);
    }

    #[test]
    fn get_binary_search() {
        let mut p = Postings::default();
        for d in [0u32, 3, 7, 9] {
            p.push(DocId(d), 0);
        }
        assert!(p.get(DocId(7)).is_some());
        assert!(p.get(DocId(4)).is_none());
    }

    #[test]
    fn iter_is_sorted() {
        let mut p = Postings::default();
        for d in 0..10u32 {
            p.push(DocId(d), d);
        }
        let ids: Vec<_> = p.iter().map(|e| e.doc.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}
