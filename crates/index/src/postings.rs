//! Positional postings lists, block-coded.
//!
//! Document ids are stored as delta-varint runs in [`BLOCK`]-entry
//! blocks with one skip entry per block (first/last doc id plus the
//! byte offset of the block's payload). Positions are stored in CSR
//! form: one concatenated array plus per-document prefix offsets, so a
//! document's positions are always a contiguous slice — no per-entry
//! allocation, no decode.
//!
//! The block decoder is branch-light: runs of single-byte varints are
//! consumed four at a time off a `u32` load (`w & 0x8080_8080 == 0`
//! means four complete deltas), falling back to a byte-at-a-time LEB128
//! loop only around multi-byte deltas.

/// Identifier of a document inside one [`crate::Index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u32);

/// Entries per coded block. 128 keeps a block inside two cache lines of
/// decoded output while amortizing the skip-entry overhead.
pub const BLOCK: usize = 128;

/// Per-block skip entry: enough to decide whether a target doc id can
/// live in the block (and where its payload starts) without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipEntry {
    /// First doc id in the block (stored absolutely; the payload only
    /// carries the remaining `len - 1` deltas).
    pub first: u32,
    /// Last doc id in the block — the skip test for intersections.
    pub last: u32,
    /// Byte offset of the block's delta payload.
    pub offset: u32,
}

/// One decoded document entry: the doc id and a borrowed slice of the
/// sorted token positions at which the term occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostingRef<'a> {
    pub doc: DocId,
    pub positions: &'a [u32],
}

/// Append a LEB128 varint.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read one LEB128 varint; returns `(value, next_offset)`. Panics on a
/// truncated buffer — the codec only ever reads its own output.
#[inline]
pub fn read_varint(bytes: &[u8], mut p: usize) -> (u32, usize) {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let b = bytes[p];
        p += 1;
        v |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return (v, p);
        }
        shift += 7;
    }
}

/// Encode a strictly-increasing doc id sequence into delta-varint
/// blocks plus skip entries. Empty input yields empty output.
pub fn encode_blocks(docs: &[u32]) -> (Vec<u8>, Vec<SkipEntry>) {
    let mut bytes = Vec::new();
    let mut skips = Vec::with_capacity(docs.len().div_ceil(BLOCK));
    for chunk in docs.chunks(BLOCK) {
        skips.push(SkipEntry {
            first: chunk[0],
            last: *chunk.last().expect("chunks are non-empty"),
            offset: u32::try_from(bytes.len()).expect("postings payload exceeds u32"),
        });
        let mut prev = chunk[0];
        for &d in &chunk[1..] {
            debug_assert!(d > prev, "doc ids must be strictly increasing");
            write_varint(&mut bytes, d - prev);
            prev = d;
        }
    }
    (bytes, skips)
}

/// Number of entries in block `b` of a list with `count` entries.
#[inline]
fn block_len(count: usize, b: usize) -> usize {
    (count - b * BLOCK).min(BLOCK)
}

/// Decode block `b` into `out`, returning the entry count. The hot loop
/// is the unrolled single-byte fast path described in the module docs.
pub fn decode_block(
    bytes: &[u8],
    skips: &[SkipEntry],
    count: usize,
    b: usize,
    out: &mut [u32; BLOCK],
) -> usize {
    let len = block_len(count, b);
    let mut acc = skips[b].first;
    out[0] = acc;
    let mut p = skips[b].offset as usize;
    let mut i = 1usize;
    while i < len {
        // Four single-byte deltas per u32 load while the run lasts.
        while i + 4 <= len && p + 4 <= bytes.len() {
            let w = u32::from_le_bytes([bytes[p], bytes[p + 1], bytes[p + 2], bytes[p + 3]]);
            if w & 0x8080_8080 != 0 {
                break;
            }
            acc += w & 0x7f;
            out[i] = acc;
            acc += (w >> 8) & 0x7f;
            out[i + 1] = acc;
            acc += (w >> 16) & 0x7f;
            out[i + 2] = acc;
            acc += (w >> 24) & 0x7f;
            out[i + 3] = acc;
            p += 4;
            i += 4;
        }
        if i >= len {
            break;
        }
        let (d, np) = read_varint(bytes, p);
        p = np;
        acc += d;
        out[i] = acc;
        i += 1;
    }
    len
}

/// Decode an entire coded list back to its doc id sequence (test and
/// bench helper; query paths decode at most one block at a time).
pub fn decode_all(bytes: &[u8], skips: &[SkipEntry], count: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(count);
    let mut buf = [0u32; BLOCK];
    for b in 0..skips.len() {
        let len = decode_block(bytes, skips, count, b, &mut buf);
        out.extend_from_slice(&buf[..len]);
    }
    out
}

/// Accumulates one term's occurrences during index construction.
/// Documents must be pushed in non-decreasing id order with
/// non-decreasing positions (the index builder guarantees this).
#[derive(Debug, Clone, Default)]
pub(crate) struct PostingsBuilder {
    docs: Vec<u32>,
    pos_starts: Vec<u32>,
    positions: Vec<u32>,
}

impl PostingsBuilder {
    /// Record an occurrence of the term at `pos` in `doc`.
    pub(crate) fn push(&mut self, doc: DocId, pos: u32) {
        match self.docs.last() {
            Some(&last) if last == doc.0 => {
                debug_assert!(self.positions.last().is_none_or(|&p| p <= pos));
            }
            _ => {
                debug_assert!(self.docs.last().is_none_or(|&d| d < doc.0));
                self.docs.push(doc.0);
                self.pos_starts
                    .push(u32::try_from(self.positions.len()).expect("positions exceed u32"));
            }
        }
        self.positions.push(pos);
    }

    /// Freeze into the block-coded form.
    pub(crate) fn freeze(mut self) -> Postings {
        let (bytes, skips) = encode_blocks(&self.docs);
        self.pos_starts
            .push(u32::try_from(self.positions.len()).expect("positions exceed u32"));
        Postings {
            bytes,
            skips,
            count: self.docs.len(),
            pos_starts: self.pos_starts,
            positions: self.positions,
        }
    }
}

/// A term's frozen postings: block-coded doc ids plus CSR positions,
/// sorted by document id (an invariant maintained by construction —
/// documents are indexed in id order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Postings {
    bytes: Vec<u8>,
    skips: Vec<SkipEntry>,
    count: usize,
    /// `count + 1` prefix offsets into `positions`.
    pos_starts: Vec<u32>,
    positions: Vec<u32>,
}

impl Postings {
    /// Number of documents containing the term.
    pub fn doc_count(&self) -> usize {
        self.count
    }

    /// Total number of occurrences across all documents.
    pub fn total_count(&self) -> usize {
        self.positions.len()
    }

    /// Encoded doc-id payload size in bytes (for benches and stats).
    pub fn encoded_bytes(&self) -> usize {
        self.bytes.len() + self.skips.len() * std::mem::size_of::<SkipEntry>()
    }

    /// The positions slice of the entry at ordinal `k`.
    #[inline]
    fn positions_of(&self, k: usize) -> &[u32] {
        &self.positions[self.pos_starts[k] as usize..self.pos_starts[k + 1] as usize]
    }

    /// Iterate the per-document entries in document-id order, decoding
    /// one block at a time.
    pub fn iter(&self) -> PostingsIter<'_> {
        PostingsIter {
            p: self,
            buf: [0; BLOCK],
            block: 0,
            len: 0,
            i: 0,
        }
    }

    /// A seekable decode cursor over the list.
    pub fn cursor(&self) -> Cursor<'_> {
        Cursor {
            p: self,
            buf: [0; BLOCK],
            block: usize::MAX,
            len: 0,
            i: 0,
        }
    }

    /// Look up a single document's entry (skip search plus one block
    /// decode). For ascending batched lookups prefer [`Self::cursor`].
    pub fn get(&self, doc: DocId) -> Option<PostingRef<'_>> {
        let mut cur = self.cursor();
        cur.seek(doc).filter(|r| r.doc == doc)
    }

    /// Term frequency in one document.
    pub fn tf(&self, doc: DocId) -> usize {
        self.get(doc).map_or(0, |r| r.positions.len())
    }
}

/// Block-at-a-time decoding iterator; yields [`PostingRef`]s.
pub struct PostingsIter<'a> {
    p: &'a Postings,
    buf: [u32; BLOCK],
    block: usize,
    len: usize,
    i: usize,
}

impl<'a> Iterator for PostingsIter<'a> {
    type Item = PostingRef<'a>;

    fn next(&mut self) -> Option<PostingRef<'a>> {
        if self.i >= self.len {
            if self.block >= self.p.skips.len() {
                return None;
            }
            self.len = decode_block(
                &self.p.bytes,
                &self.p.skips,
                self.p.count,
                self.block,
                &mut self.buf,
            );
            self.block += 1;
            self.i = 0;
        }
        let k = (self.block - 1) * BLOCK + self.i;
        let r = PostingRef {
            doc: DocId(self.buf[self.i]),
            positions: self.p.positions_of(k),
        };
        self.i += 1;
        Some(r)
    }
}

/// Monotone seek cursor: skips whole blocks via the skip table, decodes
/// at most one block per landing, and resumes in-block from the last
/// position. Feeding ascending targets never re-decodes a block.
pub struct Cursor<'a> {
    p: &'a Postings,
    buf: [u32; BLOCK],
    /// Currently decoded block, `usize::MAX` before the first decode.
    block: usize,
    len: usize,
    i: usize,
}

impl<'a> Cursor<'a> {
    /// Advance to the first entry with `doc >= target` at or after the
    /// cursor's position; `None` once the list is exhausted. Block
    /// selection gallops over the skip table (doubling probes, then a
    /// binary search over the bracketed range), mirroring the galloping
    /// intersection this cursor feeds.
    pub fn seek(&mut self, target: DocId) -> Option<PostingRef<'a>> {
        let skips = &self.p.skips;
        let start = if self.block == usize::MAX {
            0
        } else {
            self.block
        };
        if start >= skips.len() {
            return None;
        }
        let mut b = start;
        if skips[b].last < target.0 {
            let mut step = 1usize;
            while b + step < skips.len() && skips[b + step].last < target.0 {
                step <<= 1;
            }
            let hi = (b + step + 1).min(skips.len());
            b += skips[b..hi].partition_point(|s| s.last < target.0);
            if b >= skips.len() {
                self.block = skips.len();
                return None;
            }
        }
        if b != self.block {
            self.len = decode_block(&self.p.bytes, skips, self.p.count, b, &mut self.buf);
            self.block = b;
            self.i = 0;
        }
        // In-block: the same doubling-probe bracket before binary
        // search, starting from the cursor position.
        let mut lo = self.i;
        if self.buf[lo] < target.0 {
            let mut step = 1usize;
            while lo + step < self.len && self.buf[lo + step] < target.0 {
                step <<= 1;
            }
            let hi = (lo + step + 1).min(self.len);
            lo += self.buf[lo..hi].partition_point(|&d| d < target.0);
        }
        debug_assert!(lo < self.len, "skip entry guaranteed containment");
        self.i = lo;
        let k = self.block * BLOCK + self.i;
        Some(PostingRef {
            doc: DocId(self.buf[self.i]),
            positions: self.p.positions_of(k),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_pairs(pairs: &[(u32, u32)]) -> Postings {
        let mut b = PostingsBuilder::default();
        for &(d, p) in pairs {
            b.push(DocId(d), p);
        }
        b.freeze()
    }

    #[test]
    fn push_groups_by_document() {
        let p = from_pairs(&[(0, 1), (0, 5), (2, 0)]);
        assert_eq!(p.doc_count(), 2);
        assert_eq!(p.total_count(), 3);
        assert_eq!(p.tf(DocId(0)), 2);
        assert_eq!(p.tf(DocId(1)), 0);
        assert_eq!(p.tf(DocId(2)), 1);
        assert_eq!(p.get(DocId(0)).unwrap().positions, &[1, 5]);
    }

    #[test]
    fn get_finds_only_present_docs() {
        let p = from_pairs(&[(0, 0), (3, 0), (7, 0), (9, 0)]);
        assert!(p.get(DocId(7)).is_some());
        assert!(p.get(DocId(4)).is_none());
        assert!(p.get(DocId(10)).is_none());
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let pairs: Vec<(u32, u32)> = (0..300u32).map(|d| (d * 3, d)).collect();
        let p = from_pairs(&pairs);
        let ids: Vec<u32> = p.iter().map(|e| e.doc.0).collect();
        let expect: Vec<u32> = pairs.iter().map(|&(d, _)| d).collect();
        assert_eq!(ids, expect);
        for (e, &(_, pos)) in p.iter().zip(&pairs) {
            assert_eq!(e.positions, &[pos]);
        }
    }

    #[test]
    fn codec_round_trips_across_block_boundaries() {
        for n in [0usize, 1, 2, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 17] {
            let docs: Vec<u32> = (0..n as u32).map(|d| d * 7 + 3).collect();
            let (bytes, skips) = encode_blocks(&docs);
            assert_eq!(decode_all(&bytes, &skips, docs.len()), docs, "n={n}");
        }
    }

    #[test]
    fn codec_handles_max_deltas() {
        let docs = vec![0, 1, u32::MAX - 1, u32::MAX];
        let (bytes, skips) = encode_blocks(&docs);
        assert_eq!(decode_all(&bytes, &skips, docs.len()), docs);
    }

    #[test]
    fn cursor_seek_matches_linear_scan() {
        let docs: Vec<u32> = (0..500u32).map(|d| d * 2).collect();
        let pairs: Vec<(u32, u32)> = docs.iter().map(|&d| (d, 0)).collect();
        let p = from_pairs(&pairs);
        let mut cur = p.cursor();
        for target in [0u32, 1, 2, 255, 256, 600, 997, 998] {
            let expect = docs.iter().copied().find(|&d| d >= target);
            let got = cur.seek(DocId(target)).map(|r| r.doc.0);
            assert_eq!(got, expect, "target={target}");
        }
        assert_eq!(cur.seek(DocId(2000)), None);
        // Exhausted cursors stay exhausted.
        assert_eq!(cur.seek(DocId(0)), None);
    }
}
