//! tf·idf term weighting (Salton & Buckley, reference \[6\] of the paper).

use std::collections::HashMap;

/// Classic log-scaled tf·idf weight: `(1 + ln tf) · idf` for `tf > 0`,
/// zero otherwise.
pub fn tf_idf_weight(tf: usize, idf: f64) -> f64 {
    if tf == 0 {
        0.0
    } else {
        (1.0 + (tf as f64).ln()) * idf
    }
}

/// A sparse weighted term vector.
///
/// Used for document term vectors in the concept-vector generator (§II-B)
/// and for the bag-of-words scoring of mined relevance keywords (§IV-B).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TermVector {
    weights: HashMap<String, f64>,
}

impl TermVector {
    /// Create an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a vector from term counts and a per-term idf lookup.
    pub fn from_counts<F>(counts: &HashMap<String, usize>, idf: F) -> Self
    where
        F: Fn(&str) -> f64,
    {
        let weights = counts
            .iter()
            .map(|(t, &c)| (t.clone(), tf_idf_weight(c, idf(t))))
            .collect();
        Self { weights }
    }

    /// Set (overwrite) one term's weight.
    pub fn set(&mut self, term: impl Into<String>, weight: f64) {
        self.weights.insert(term.into(), weight);
    }

    /// Add to one term's weight (creating it at zero first).
    pub fn add(&mut self, term: impl Into<String>, delta: f64) {
        *self.weights.entry(term.into()).or_insert(0.0) += delta;
    }

    /// Get a term's weight (zero when absent).
    pub fn get(&self, term: &str) -> f64 {
        self.weights.get(term).copied().unwrap_or(0.0)
    }

    /// Remove a term; returns its former weight if present.
    pub fn remove(&mut self, term: &str) -> Option<f64> {
        self.weights.remove(term)
    }

    /// Does the vector contain `term`?
    pub fn contains(&self, term: &str) -> bool {
        self.weights.contains_key(term)
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterate `(term, weight)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.weights.iter().map(|(t, &w)| (t.as_str(), w))
    }

    /// Largest weight in the vector (zero when empty).
    pub fn max_weight(&self) -> f64 {
        self.weights.values().copied().fold(0.0, f64::max)
    }

    /// Scale every weight so the maximum becomes 1.0 (§II-B: "the remaining
    /// terms' weights are normalized so that they are between 0 and 1").
    /// A vector of all-zero weights is left unchanged.
    pub fn normalize_max(&mut self) {
        let max = self.max_weight();
        if max > 0.0 {
            for w in self.weights.values_mut() {
                *w /= max;
            }
        }
    }

    /// Multiply weights below `threshold` by `factor` (the paper's
    /// "punish" step), then drop entries that fall below `drop_below`.
    pub fn punish_and_prune(&mut self, threshold: f64, factor: f64, drop_below: f64) {
        for w in self.weights.values_mut() {
            if *w < threshold {
                *w *= factor;
            }
        }
        self.weights.retain(|_, w| *w >= drop_below);
    }

    /// The `k` highest-weighted entries, descending by weight (ties broken
    /// by term for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(String, f64)> {
        let mut v: Vec<_> = self.weights.iter().map(|(t, &w)| (t.clone(), w)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }

    /// Sum of all weights.
    pub fn sum(&self) -> f64 {
        self.weights.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_zero_tf() {
        assert_eq!(tf_idf_weight(0, 3.0), 0.0);
    }

    #[test]
    fn weight_monotone_in_tf_and_idf() {
        assert!(tf_idf_weight(2, 1.0) > tf_idf_weight(1, 1.0));
        assert!(tf_idf_weight(1, 2.0) > tf_idf_weight(1, 1.0));
    }

    #[test]
    fn normalize_max_caps_at_one() {
        let mut v = TermVector::new();
        v.set("a", 4.0);
        v.set("b", 2.0);
        v.normalize_max();
        assert_eq!(v.get("a"), 1.0);
        assert_eq!(v.get("b"), 0.5);
    }

    #[test]
    fn normalize_empty_is_noop() {
        let mut v = TermVector::new();
        v.normalize_max();
        assert!(v.is_empty());
    }

    #[test]
    fn punish_and_prune_behaviour() {
        let mut v = TermVector::new();
        v.set("strong", 0.9);
        v.set("weak", 0.3);
        v.set("tiny", 0.05);
        // Punish entries below 0.5 by x0.5, then drop below 0.1.
        v.punish_and_prune(0.5, 0.5, 0.1);
        assert_eq!(v.get("strong"), 0.9);
        assert_eq!(v.get("weak"), 0.15);
        assert!(!v.contains("tiny"));
    }

    #[test]
    fn top_k_descending_and_deterministic() {
        let mut v = TermVector::new();
        v.set("b", 1.0);
        v.set("a", 1.0);
        v.set("c", 2.0);
        let top = v.top_k(2);
        assert_eq!(top[0].0, "c");
        assert_eq!(top[1].0, "a"); // tie broken alphabetically
    }

    #[test]
    fn from_counts_applies_idf() {
        let mut counts = HashMap::new();
        counts.insert("rare".to_string(), 1);
        counts.insert("common".to_string(), 1);
        let v = TermVector::from_counts(&counts, |t| if t == "rare" { 5.0 } else { 1.0 });
        assert!(v.get("rare") > v.get("common"));
    }

    #[test]
    fn add_accumulates() {
        let mut v = TermVector::new();
        v.add("x", 0.5);
        v.add("x", 0.25);
        assert!((v.get("x") - 0.75).abs() < 1e-12);
    }
}
