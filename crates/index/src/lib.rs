//! Inverted-index search engine substrate.
//!
//! The paper leans on Yahoo! Search in four places: the term dictionary
//! with term–document frequencies used to build tf·idf term vectors
//! (§II-B), the number of results returned for a phrase query
//! (`searchengine_phrase`, feature 4 of Table I), the result snippets used
//! to mine relevance keywords (§IV-B), and the ranked document lists that
//! the Prisma-style refinement tool draws pseudo-relevance feedback from.
//!
//! This crate implements that search engine from scratch: a positional
//! inverted index over a document collection, tf·idf ranked retrieval
//! (Salton & Buckley weighting, reference \[6\]), conjunctive and phrase
//! queries with document counts, and match-window snippet extraction.
//!
//! ```
//! use ctxrank_index::IndexBuilder;
//!
//! let mut b = IndexBuilder::new();
//! b.add_document("global warming threatens polar bears");
//! b.add_document("the warming trend continued this year");
//! let index = b.build();
//!
//! assert_eq!(index.doc_freq("warming"), 2);
//! assert_eq!(index.phrase_count(&["global".into(), "warming".into()]), 1);
//! let hits = index.search(&["warming".into(), "polar".into()], 10);
//! assert_eq!(hits[0].doc.0, 0);
//! ```

mod postings;
mod search;
mod snippet;
mod tfidf;

pub use postings::{
    decode_all, decode_block, encode_blocks, read_varint, write_varint, DocId, PostingRef,
    Postings, SkipEntry, BLOCK,
};
pub use search::{merge_top_k, SearchAccumulator, SearchHit};
pub use snippet::{snippet, DEFAULT_CONTEXT_TOKENS};
pub use tfidf::{tf_idf_weight, TermVector};

use ctxrank_text::{Interner, TermId};

/// A document stored in the index: the raw text plus its token stream.
#[derive(Debug, Clone)]
pub struct StoredDoc {
    /// Raw document text.
    pub text: String,
    /// Normalized terms in order (empty normalizations dropped).
    pub terms: Vec<String>,
    /// Interned id of each term (parallel to `terms`, ids from the
    /// owning index's [`Interner`]).
    pub term_ids: Vec<TermId>,
    /// Byte offset of each term in `text` (parallel to `terms`).
    pub offsets: Vec<(usize, usize)>,
}

impl StoredDoc {
    /// Number of terms in the document.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the document has no indexable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Builder that accumulates documents before freezing them into an
/// [`Index`].
#[derive(Debug, Default)]
pub struct IndexBuilder {
    docs: Vec<StoredDoc>,
    interner: Interner,
}

impl IndexBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenize, normalize, intern and store one document; returns its id.
    pub fn add_document(&mut self, text: &str) -> DocId {
        let id = DocId(self.docs.len() as u32);
        let mut terms = Vec::new();
        let mut term_ids = Vec::new();
        let mut offsets = Vec::new();
        for tok in ctxrank_text::tokenize(text) {
            let norm = ctxrank_text::normalize_term(tok.text);
            if !norm.is_empty() {
                term_ids.push(self.interner.intern(&norm));
                terms.push(norm);
                offsets.push((tok.start, tok.end));
            }
        }
        self.docs.push(StoredDoc {
            text: text.to_string(),
            terms,
            term_ids,
            offsets,
        });
        id
    }

    /// Freeze the collection into a searchable [`Index`]. Postings are
    /// keyed by dense [`TermId`], one list per vocabulary slot,
    /// block-coded on freeze (delta-varint runs plus skip entries).
    pub fn build(self) -> Index {
        let mut builders: Vec<postings::PostingsBuilder> =
            vec![postings::PostingsBuilder::default(); self.interner.len()];
        for (doc_idx, doc) in self.docs.iter().enumerate() {
            let id = DocId(doc_idx as u32);
            for (pos, term_id) in doc.term_ids.iter().enumerate() {
                builders[term_id.idx()].push(id, pos as u32);
            }
        }
        Index {
            docs: self.docs,
            interner: self.interner,
            postings: builders
                .into_iter()
                .map(postings::PostingsBuilder::freeze)
                .collect(),
        }
    }
}

/// A frozen, searchable document collection.
#[derive(Debug)]
pub struct Index {
    docs: Vec<StoredDoc>,
    /// The collection vocabulary; every indexed term has a dense id.
    interner: Interner,
    /// Postings indexed by [`TermId`] (every interned term occurs in at
    /// least one document, so no slot is empty).
    postings: Vec<Postings>,
}

impl Index {
    /// Number of documents in the collection.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Access a stored document.
    pub fn doc(&self, id: DocId) -> &StoredDoc {
        &self.docs[id.0 as usize]
    }

    /// The collection vocabulary interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The dense id of `term`, if any document contains it.
    #[inline]
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Size of the interned vocabulary; term ids are dense in
    /// `0..num_terms`, so this bounds a term-range partition.
    pub fn num_terms(&self) -> usize {
        self.interner.len()
    }

    /// Number of documents containing `term` (document frequency).
    pub fn doc_freq(&self, term: &str) -> usize {
        self.term_id(term).map_or(0, |id| self.doc_freq_id(id))
    }

    /// Document frequency by term id.
    pub fn doc_freq_id(&self, id: TermId) -> usize {
        self.postings[id.idx()].doc_count()
    }

    /// Inverse document frequency, smoothed so unseen terms get the
    /// maximum idf instead of infinity: `ln((N + 1) / (df + 1))`.
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.docs.len() as f64;
        let df = self.doc_freq(term) as f64;
        ((n + 1.0) / (df + 1.0)).ln()
    }

    /// Idf by term id.
    pub fn idf_id(&self, id: TermId) -> f64 {
        let n = self.docs.len() as f64;
        let df = self.doc_freq_id(id) as f64;
        ((n + 1.0) / (df + 1.0)).ln()
    }

    /// Postings list for `term`, if any document contains it.
    pub fn postings(&self, term: &str) -> Option<&Postings> {
        self.term_id(term).map(|id| self.postings_id(id))
    }

    /// Postings list by term id.
    #[inline]
    pub fn postings_id(&self, id: TermId) -> &Postings {
        &self.postings[id.idx()]
    }

    /// Iterate over all indexed terms.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.interner.iter().map(|(_, t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> Index {
        let mut b = IndexBuilder::new();
        b.add_document("global warming threatens the arctic");
        b.add_document("warming oceans and global trade");
        b.add_document("trade talks stall again");
        b.build()
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let mut b = IndexBuilder::new();
        b.add_document("spam spam spam");
        b.add_document("spam once");
        let idx = b.build();
        assert_eq!(idx.doc_freq("spam"), 2);
    }

    #[test]
    fn idf_ordering() {
        let idx = small_index();
        // "arctic" appears once, "global" twice: rarer term has higher idf.
        assert!(idx.idf("arctic") > idx.idf("global"));
        // Unseen term gets the maximum idf.
        assert!(idx.idf("zebra") >= idx.idf("arctic"));
    }

    #[test]
    fn empty_index() {
        let idx = IndexBuilder::new().build();
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.doc_freq("x"), 0);
        assert!(idx.search(&["x".into()], 5).is_empty());
    }

    #[test]
    fn stored_doc_offsets_align() {
        let idx = small_index();
        let doc = idx.doc(DocId(0));
        for (term, (s, e)) in doc.terms.iter().zip(&doc.offsets) {
            assert_eq!(&doc.text[*s..*e].to_lowercase(), term);
        }
    }

    #[test]
    fn terms_iterator_covers_vocabulary() {
        let idx = small_index();
        let vocab: Vec<_> = idx.terms().collect();
        assert!(vocab.contains(&"warming"));
        assert!(vocab.contains(&"stall"));
    }
}
