//! Property-based tests for the feature space.

use ctxrank_features::{
    FeatureExtractor, InterestFeatures, RelevanceModelBuilder, RelevantTerms, SenseConfig,
};
use ctxrank_index::IndexBuilder;
use ctxrank_querylog::{extract_units, QueryLog, UnitConfig};
use proptest::prelude::*;
use std::collections::HashSet;

fn docs_to_index(docs: &[Vec<String>]) -> ctxrank_index::Index {
    let mut b = IndexBuilder::new();
    for d in docs {
        b.add_document(&d.join(" "));
    }
    b.build()
}

proptest! {
    /// Interestingness extraction is total and internally consistent for
    /// arbitrary logs, corpora and concepts.
    #[test]
    fn interestingness_consistent(
        queries in prop::collection::vec((prop::collection::vec("[a-c]{1,3}", 1..4), 1u64..40), 0..25),
        docs in prop::collection::vec(prop::collection::vec("[a-c]{1,3}", 1..20), 1..15),
        concept in prop::collection::vec("[a-c]{1,3}", 1..4),
    ) {
        let mut log = QueryLog::new();
        for (terms, freq) in &queries {
            log.add_terms(terms.clone(), *freq);
        }
        let units = extract_units(&log, &UnitConfig::default());
        let index = docs_to_index(&docs);
        let fx = FeatureExtractor::new(&log, &units, &index, |_| 7, |_| 2);
        let f = fx.interestingness(&concept);
        prop_assert!(f.freq_phrase_contained >= f.freq_exact);
        prop_assert_eq!(f.concept_size as usize, concept.len());
        prop_assert_eq!(f.number_of_chars as usize, concept.join(" ").chars().count());
        prop_assert!((0.0..=1.0).contains(&f.unit_score));
        let dense = f.to_dense();
        prop_assert_eq!(dense.len(), InterestFeatures::DIM);
        prop_assert!(dense.iter().all(|v| v.is_finite()));
    }

    /// The context score of mined keywords is monotone in the context:
    /// adding terms never lowers it, and it never exceeds the summation.
    #[test]
    fn relevance_score_monotone(
        keywords in prop::collection::vec(("[a-f]{2,5}", 0.1f64..10.0), 1..30),
        subset_pick in prop::collection::vec(any::<bool>(), 1..30),
    ) {
        let mut seen = HashSet::new();
        let kws: Vec<(String, f64)> = keywords
            .into_iter()
            .filter(|(t, _)| seen.insert(t.clone()))
            .collect();
        let rt = RelevantTerms { terms: kws.clone() };
        let small: HashSet<String> = kws
            .iter()
            .zip(subset_pick.iter().cycle())
            .filter(|(_, &p)| p)
            .map(|((t, _), _)| t.clone())
            .collect();
        let mut large = small.clone();
        large.extend(kws.iter().map(|(t, _)| t.clone()));
        let s_small = rt.score_context(&small);
        let s_large = rt.score_context(&large);
        prop_assert!(s_small <= s_large + 1e-12);
        prop_assert!(s_large <= rt.summation() + 1e-12);
        prop_assert!(s_small >= 0.0);
    }

    /// Sense clustering is total: any corpus/concept yields clusters
    /// whose supports sum to at most the snippet count and whose scores
    /// are finite.
    #[test]
    fn senses_total(
        docs in prop::collection::vec(prop::collection::vec("[a-d]{1,4}", 3..15), 1..12),
        concept in "[a-d]{1,4}",
    ) {
        let index = docs_to_index(&docs);
        let log = QueryLog::new();
        let builder = RelevanceModelBuilder::new(&index, &log);
        let senses =
            builder.mine_snippet_senses(std::slice::from_ref(&concept), &SenseConfig::default());
        let snippet_count = index.phrase_snippets(&[concept], 100, 12).len();
        let support_sum: usize = senses.support.iter().sum();
        prop_assert!(support_sum <= snippet_count);
        for s in &senses.senses {
            for (_, w) in &s.terms {
                prop_assert!(w.is_finite() && *w >= 0.0);
            }
        }
    }

    /// Compiled (interned) relevance scoring is bit-identical to the
    /// legacy String-keyed path: same models, arbitrary contexts, every
    /// mining resource, both known and unknown surfaces.
    #[test]
    fn compiled_relevance_matches_string_path(
        queries in prop::collection::vec((prop::collection::vec("[a-c]{1,3}", 1..4), 1u64..40), 0..25),
        docs in prop::collection::vec(prop::collection::vec("[a-c]{1,3}", 1..20), 1..12),
        concepts in prop::collection::vec(prop::collection::vec("[a-c]{1,3}", 1..3), 1..6),
        context_words in prop::collection::vec("[a-c]{1,4}", 0..30),
    ) {
        let index = docs_to_index(&docs);
        let mut log = QueryLog::new();
        for (terms, freq) in &queries {
            log.add_terms(terms.clone(), *freq);
        }
        let builder = RelevanceModelBuilder::new(&index, &log);
        let text = context_words.join(" ");
        let legacy_ctx = ctxrank_features::RelevanceModel::context_of(&text);
        for resource in ctxrank_features::MiningResource::ALL {
            let model = builder.build(concepts.iter().cloned(), resource);
            let compiled = model.compile();
            let compiled_ctx = compiled.context_of(&text);
            let mut surfaces: Vec<String> =
                concepts.iter().map(|c| c.join(" ")).collect();
            surfaces.push("surface never mined".to_string());
            for surface in &surfaces {
                let legacy = model.score(surface, &legacy_ctx);
                let interned = compiled.score(surface, &compiled_ctx);
                prop_assert_eq!(
                    legacy.to_bits(),
                    interned.to_bits(),
                    "resource {:?} surface {:?}: {} vs {}",
                    resource, surface, legacy, interned
                );
                prop_assert_eq!(
                    model.score_feature(surface, &legacy_ctx).to_bits(),
                    compiled.score_feature(surface, &compiled_ctx).to_bits()
                );
            }
        }
    }
}
