//! The nine interestingness features of Table I.
//!
//! | # | feature | source |
//! |---|---------|--------|
//! | 1 | `freq_exact` | query log: submissions exactly equal to the concept |
//! | 2 | `freq_phrase_contained` | query log: submissions containing the concept as a phrase |
//! | 3 | `unit_score` | mutual information of the concept's terms (§II-B) |
//! | 4 | `searchengine_phrase` | number of results for the concept as a phrase query |
//! | 5 | `concept_size` | number of terms |
//! | 6 | `number_of_chars` | number of characters |
//! | 7 | `subconcepts` | sub-units with ≥ 2 terms and unit score > 0.25 |
//! | 8 | `high_level_type` | taxonomy major type, when the concept is a dictionary entity |
//! | 9 | `wiki_word_count` | Wikipedia article length in words (0 if none) |
//!
//! Counts are kept raw here; [`InterestFeatures::to_dense`] applies the
//! `ln(1 + x)` compression customary for heavy-tailed count features so
//! the linear ranker is not dominated by the tails.

use ctxrank_index::Index;
use ctxrank_querylog::{QueryLog, UnitDictionary};
use ctxrank_text::{Interner, TermId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::RwLock;

/// Threshold used by feature 7: sub-units must have a unit score above
/// this (from the paper: "a unit score of larger than 0.25").
pub const SUBCONCEPT_MIN_SCORE: f64 = 0.25;

/// Raw interestingness features for one concept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct InterestFeatures {
    pub freq_exact: u64,
    pub freq_phrase_contained: u64,
    pub unit_score: f64,
    pub searchengine_phrase: u64,
    pub concept_size: u32,
    pub number_of_chars: u32,
    pub subconcepts: u32,
    /// Taxonomy code (0 = not a dictionary entity).
    pub high_level_type: u8,
    pub wiki_word_count: u32,
}

impl InterestFeatures {
    /// Dimensionality of the dense representation.
    pub const DIM: usize = 9;

    /// Dense vector with `ln(1+x)` on count-like fields.
    pub fn to_dense(&self) -> Vec<f64> {
        vec![
            (self.freq_exact as f64).ln_1p(),
            (self.freq_phrase_contained as f64).ln_1p(),
            self.unit_score,
            (self.searchengine_phrase as f64).ln_1p(),
            self.concept_size as f64,
            self.number_of_chars as f64,
            self.subconcepts as f64,
            self.high_level_type as f64,
            (self.wiki_word_count as f64).ln_1p(),
        ]
    }

    /// Names of the dense dimensions, aligned with [`Self::to_dense`].
    pub fn names() -> [&'static str; Self::DIM] {
        [
            "freq_exact",
            "freq_phrase_contained",
            "unit_score",
            "searchengine_phrase",
            "concept_size",
            "number_of_chars",
            "subconcepts",
            "high_level_type",
            "wiki_word_count",
        ]
    }

    /// The feature-group of each dense dimension, for the Table III
    /// leave-one-group-out ablation.
    pub fn groups() -> [&'static str; Self::DIM] {
        [
            "query_logs",
            "query_logs",
            "query_logs",
            "search_results",
            "text_based",
            "text_based",
            "text_based",
            "taxonomy",
            "other",
        ]
    }
}

/// Pulls the Table I features from the knowledge sources.
///
/// The Wikipedia and taxonomy lookups are injected as closures so this
/// crate stays decoupled from whichever store provides them (the
/// synthetic encyclopedia in the experiments, a real dump in production).
/// Injected lookup: concept terms → Wikipedia article word count.
pub type WikiLookup<'a> = Box<dyn Fn(&[String]) -> u32 + Sync + 'a>;
/// Injected lookup: concept terms → taxonomy major-type code (0 = none).
pub type TypeLookup<'a> = Box<dyn Fn(&[String]) -> u8 + Sync + 'a>;

/// Memo table for [`FeatureExtractor::interestingness`], keyed by interned
/// term-id sequences so repeated candidates (the same concept re-annotated
/// across documents) hash a handful of `u32`s instead of re-joining and
/// re-probing every knowledge source.
#[derive(Default)]
struct InterestCache {
    interner: Interner,
    map: HashMap<Box<[TermId]>, InterestFeatures>,
}

pub struct FeatureExtractor<'a> {
    log: &'a QueryLog,
    units: &'a UnitDictionary,
    corpus: &'a Index,
    wiki_word_count: WikiLookup<'a>,
    entity_type_code: TypeLookup<'a>,
    /// Features are pure functions of the concept terms, so concurrent
    /// threads may race to insert the same key — both compute identical
    /// values and the result is deterministic.
    cache: RwLock<InterestCache>,
}

impl<'a> std::fmt::Debug for FeatureExtractor<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeatureExtractor").finish_non_exhaustive()
    }
}

impl<'a> FeatureExtractor<'a> {
    /// Assemble an extractor.
    pub fn new(
        log: &'a QueryLog,
        units: &'a UnitDictionary,
        corpus: &'a Index,
        wiki_word_count: impl Fn(&[String]) -> u32 + Sync + 'a,
        entity_type_code: impl Fn(&[String]) -> u8 + Sync + 'a,
    ) -> Self {
        Self {
            log,
            units,
            corpus,
            wiki_word_count: Box::new(wiki_word_count),
            entity_type_code: Box::new(entity_type_code),
            cache: RwLock::new(InterestCache::default()),
        }
    }

    /// Compute all nine features for `concept_terms`, memoized per term
    /// sequence.
    pub fn interestingness(&self, concept_terms: &[String]) -> InterestFeatures {
        {
            let cache = self.cache.read().expect("interest cache poisoned");
            if let Some(ids) = cache.interner.ids_of(concept_terms) {
                if let Some(&hit) = cache.map.get(ids.as_slice()) {
                    return hit;
                }
            }
        }
        let features = self.compute(concept_terms);
        let mut cache = self.cache.write().expect("interest cache poisoned");
        let ids: Box<[TermId]> = concept_terms
            .iter()
            .map(|t| cache.interner.intern(t))
            .collect();
        cache.map.insert(ids, features);
        features
    }

    /// The uncached feature computation.
    fn compute(&self, concept_terms: &[String]) -> InterestFeatures {
        let surface = concept_terms.join(" ");
        InterestFeatures {
            freq_exact: self.log.freq_exact(concept_terms),
            freq_phrase_contained: self.log.freq_phrase_contained(concept_terms),
            // Table I defines unit_score as the mutual information of the
            // concept's terms; MI is undefined for single terms, so those
            // get 0 (their popularity is carried by the freq features).
            unit_score: if concept_terms.len() > 1 {
                self.units.score(concept_terms)
            } else {
                0.0
            },
            searchengine_phrase: self.corpus.phrase_count(concept_terms) as u64,
            concept_size: concept_terms.len() as u32,
            number_of_chars: surface.chars().count() as u32,
            subconcepts: self
                .units
                .subunits_of(concept_terms, 2, SUBCONCEPT_MIN_SCORE)
                as u32,
            high_level_type: (self.entity_type_code)(concept_terms),
            wiki_word_count: (self.wiki_word_count)(concept_terms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_index::IndexBuilder;
    use ctxrank_querylog::{extract_units, UnitConfig};

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn setup() -> (QueryLog, UnitDictionary, Index) {
        let mut log = QueryLog::new();
        log.add("global warming", 120);
        log.add("global warming effects", 50);
        log.add("warming", 10);
        for i in 0..40 {
            log.add(&format!("filler term{i}"), 10);
        }
        let units = extract_units(&log, &UnitConfig::default());
        let mut b = IndexBuilder::new();
        b.add_document("report on global warming trends");
        b.add_document("global warming accelerates");
        b.add_document("unrelated sports news");
        (log, units, b.build())
    }

    #[test]
    fn all_nine_features_populated() {
        let (log, units, corpus) = setup();
        let fx = FeatureExtractor::new(&log, &units, &corpus, |_| 842, |_| 4);
        let f = fx.interestingness(&t("global warming"));
        assert_eq!(f.freq_exact, 120);
        assert_eq!(f.freq_phrase_contained, 170);
        assert!(f.unit_score > 0.0);
        assert_eq!(f.searchengine_phrase, 2);
        assert_eq!(f.concept_size, 2);
        assert_eq!(f.number_of_chars, "global warming".len() as u32);
        assert_eq!(f.high_level_type, 4);
        assert_eq!(f.wiki_word_count, 842);
    }

    #[test]
    fn unknown_concept_zeroes() {
        let (log, units, corpus) = setup();
        let fx = FeatureExtractor::new(&log, &units, &corpus, |_| 0, |_| 0);
        let f = fx.interestingness(&t("nonexistent thing"));
        assert_eq!(f.freq_exact, 0);
        assert_eq!(f.freq_phrase_contained, 0);
        assert_eq!(f.unit_score, 0.0);
        assert_eq!(f.searchengine_phrase, 0);
        assert_eq!(f.wiki_word_count, 0);
        assert_eq!(f.high_level_type, 0);
    }

    #[test]
    fn dense_applies_log_compression() {
        let f = InterestFeatures {
            freq_exact: 1000,
            ..InterestFeatures::default()
        };
        let d = f.to_dense();
        assert!((d[0] - 1001f64.ln()).abs() < 1e-9);
        assert_eq!(d.len(), InterestFeatures::DIM);
    }

    #[test]
    fn names_and_groups_aligned() {
        assert_eq!(InterestFeatures::names().len(), InterestFeatures::DIM);
        assert_eq!(InterestFeatures::groups().len(), InterestFeatures::DIM);
        // Table III groups: query logs has 3 members, text-based 3.
        let groups = InterestFeatures::groups();
        assert_eq!(groups.iter().filter(|g| **g == "query_logs").count(), 3);
        assert_eq!(groups.iter().filter(|g| **g == "text_based").count(), 3);
        assert_eq!(groups.iter().filter(|g| **g == "taxonomy").count(), 1);
        assert_eq!(groups.iter().filter(|g| **g == "search_results").count(), 1);
        assert_eq!(groups.iter().filter(|g| **g == "other").count(), 1);
    }

    #[test]
    fn memoized_lookup_returns_identical_features() {
        let (log, units, corpus) = setup();
        use std::sync::atomic::{AtomicU32, Ordering};
        let wiki_calls = AtomicU32::new(0);
        let fx = FeatureExtractor::new(
            &log,
            &units,
            &corpus,
            |_| {
                wiki_calls.fetch_add(1, Ordering::Relaxed);
                842
            },
            |_| 4,
        );
        let first = fx.interestingness(&t("global warming"));
        let second = fx.interestingness(&t("global warming"));
        assert_eq!(first, second);
        // The second call is served from the cache: the injected lookup
        // runs once.
        assert_eq!(wiki_calls.load(Ordering::Relaxed), 1);
        // Different concepts are distinct keys.
        let other = fx.interestingness(&t("warming"));
        assert_ne!(first.concept_size, 0);
        assert_eq!(other.concept_size, 1);
        assert_eq!(wiki_calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn char_count_is_chars_not_bytes() {
        let f = InterestFeatures {
            number_of_chars: "caf\u{e9}".chars().count() as u32,
            ..InterestFeatures::default()
        };
        assert_eq!(f.number_of_chars, 4);
    }
}
