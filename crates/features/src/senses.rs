//! Sense clustering for ambiguous concepts — the §IV-C discussion.
//!
//! "If a concept is ambiguous, then the relevant keywords mined might
//! have low final scores, as they would not cluster well globally.
//! However, there would be some good local clusters, depending on the
//! number of senses, and if such clusters can be identified then the
//! scores can be boosted."
//!
//! [`RelevanceModelBuilder::mine_snippet_senses`] implements that idea:
//! instead of pooling all of a concept's snippets into one bag of words,
//! the snippets are clustered by vocabulary overlap (greedy
//! centroid-link agglomeration on Jaccard similarity — a lightweight
//! stand-in for the LSA-flavoured techniques the paper points at), and
//! a keyword set is mined per cluster. At runtime the concept's
//! relevance in a context is the **maximum over senses**, so a "jaguar"
//! mention in a wildlife story matches the animal cluster even though
//! the car cluster dilutes the pooled model.

use crate::relevance::{RelevanceModelBuilder, RelevantTerms, SNIPPET_CONTEXT, SNIPPET_RESULTS};
use std::collections::{HashMap, HashSet};

/// Sense-clustered relevance keywords for one concept.
#[derive(Debug, Clone, Default)]
pub struct SenseClusters {
    /// One keyword set per discovered sense, largest cluster first.
    pub senses: Vec<RelevantTerms>,
    /// Number of snippets backing each sense (parallel to `senses`).
    pub support: Vec<usize>,
}

impl SenseClusters {
    /// Number of senses discovered.
    pub fn num_senses(&self) -> usize {
        self.senses.len()
    }

    /// True when nothing was mined.
    pub fn is_empty(&self) -> bool {
        self.senses.is_empty()
    }

    /// Relevance of the concept in a context: the best-matching sense's
    /// score (§IV-C's "local cluster" boost).
    pub fn score_context(&self, context: &HashSet<String>) -> f64 {
        self.senses
            .iter()
            .map(|s| s.score_context(context))
            .fold(0.0, f64::max)
    }

    /// Index of the sense that best matches the context, if any sense
    /// matches at all — usable for sense-tagging the annotation.
    pub fn best_sense(&self, context: &HashSet<String>) -> Option<usize> {
        let (idx, score) = self
            .senses
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.score_context(context)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))?;
        if score > 0.0 {
            Some(idx)
        } else {
            None
        }
    }
}

/// Configuration for snippet clustering.
#[derive(Debug, Clone)]
pub struct SenseConfig {
    /// Jaccard similarity above which a snippet joins a cluster.
    pub join_threshold: f64,
    /// Discard clusters backed by fewer snippets than this.
    pub min_support: usize,
    /// Keep at most this many senses (largest first).
    pub max_senses: usize,
}

impl Default for SenseConfig {
    fn default() -> Self {
        Self {
            join_threshold: 0.12,
            min_support: 2,
            max_senses: 4,
        }
    }
}

fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    inter / union
}

impl<'a> RelevanceModelBuilder<'a> {
    /// Cluster the concept's snippets into senses and mine a keyword set
    /// per sense.
    pub fn mine_snippet_senses(
        &self,
        concept_terms: &[String],
        config: &SenseConfig,
    ) -> SenseClusters {
        let snippets =
            self.corpus()
                .phrase_snippets(concept_terms, SNIPPET_RESULTS, SNIPPET_CONTEXT);
        let concept_stems: HashSet<String> = concept_terms
            .iter()
            .map(|t| ctxrank_text::stem(t))
            .collect();

        // Stemmed, filtered term set per snippet.
        let snippet_sets: Vec<HashSet<String>> = snippets
            .iter()
            .map(|s| {
                ctxrank_text::stemmed_terms(s)
                    .into_iter()
                    .filter(|t| {
                        !concept_stems.contains(t) && self.stemmed_idf().idf(t) >= self.min_idf
                    })
                    .collect()
            })
            .filter(|s: &HashSet<String>| !s.is_empty())
            .collect();

        // Greedy centroid-link clustering: each snippet joins the
        // existing cluster with the highest Jaccard similarity to the
        // cluster's accumulated vocabulary, or founds a new cluster.
        let mut clusters: Vec<(HashSet<String>, Vec<usize>)> = Vec::new();
        for (i, set) in snippet_sets.iter().enumerate() {
            let best = clusters
                .iter()
                .enumerate()
                .map(|(ci, (vocab, _))| (ci, jaccard(set, vocab)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            match best {
                Some((ci, sim)) if sim >= config.join_threshold => {
                    clusters[ci].0.extend(set.iter().cloned());
                    clusters[ci].1.push(i);
                }
                _ => clusters.push((set.clone(), vec![i])),
            }
        }
        clusters.retain(|(_, members)| members.len() >= config.min_support);
        clusters.sort_by_key(|(_, members)| std::cmp::Reverse(members.len()));
        clusters.truncate(config.max_senses);

        // Mine a tf·idf keyword set per cluster.
        let mut senses = Vec::with_capacity(clusters.len());
        let mut support = Vec::with_capacity(clusters.len());
        for (_, members) in &clusters {
            let mut tf: HashMap<String, usize> = HashMap::new();
            for &i in members {
                for term in &snippet_sets[i] {
                    *tf.entry(term.clone()).or_insert(0) += 1;
                }
            }
            let mut terms: Vec<(String, f64)> = tf
                .into_iter()
                .map(|(stem, count)| {
                    let idf = self.stemmed_idf().idf(&stem);
                    (stem, self.keyword_weight(count, idf))
                })
                .collect();
            terms.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            terms.truncate(self.m);
            senses.push(RelevantTerms { terms });
            support.push(members.len());
        }
        SenseClusters { senses, support }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relevance::RelevanceModel;
    use ctxrank_index::IndexBuilder;
    use ctxrank_querylog::QueryLog;

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    /// A corpus where "jaguar" appears in two well-separated senses.
    fn ambiguous_corpus() -> ctxrank_index::Index {
        let mut b = IndexBuilder::new();
        for i in 0..8 {
            b.add_document(&format!(
                "the jaguar stalked jungle prey near the riverbank habitat {i}"
            ));
        }
        for i in 0..8 {
            b.add_document(&format!(
                "the jaguar sedan engine delivers luxury performance dealership {i}"
            ));
        }
        for i in 0..10 {
            b.add_document(&format!("unrelated financial markets report number {i}"));
        }
        b.build()
    }

    #[test]
    fn two_senses_discovered() {
        let corpus = ambiguous_corpus();
        let log = QueryLog::new();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let senses = builder.mine_snippet_senses(&t("jaguar"), &SenseConfig::default());
        assert_eq!(senses.num_senses(), 2, "{senses:?}");
        assert!(senses.support.iter().all(|&s| s >= 2));
    }

    #[test]
    fn senses_score_their_own_contexts() {
        let corpus = ambiguous_corpus();
        let log = QueryLog::new();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let senses = builder.mine_snippet_senses(&t("jaguar"), &SenseConfig::default());
        let animal_ctx =
            RelevanceModel::context_of("a jungle predator stalked its prey to the riverbank");
        let car_ctx =
            RelevanceModel::context_of("the sedan's engine gives real luxury performance");
        assert!(senses.score_context(&animal_ctx) > 0.0);
        assert!(senses.score_context(&car_ctx) > 0.0);
        assert_ne!(senses.best_sense(&animal_ctx), senses.best_sense(&car_ctx));
    }

    #[test]
    fn sense_aware_beats_pooled_on_minority_sense() {
        let mut b = IndexBuilder::new();
        // Dominant sense: 16 docs; minority sense: 4 docs.
        for i in 0..16 {
            b.add_document(&format!(
                "jaguar sedan engine luxury dealership performance {i}"
            ));
        }
        for i in 0..4 {
            b.add_document(&format!(
                "jaguar jungle prey habitat riverbank predator {i}"
            ));
        }
        for i in 0..10 {
            b.add_document(&format!("filler economic bulletin entry {i}"));
        }
        let corpus = b.build();
        let log = QueryLog::new();
        let builder = RelevanceModelBuilder::new(&corpus, &log);

        let pooled = builder.mine(&t("jaguar"), crate::MiningResource::Snippets);
        let senses = builder.mine_snippet_senses(&t("jaguar"), &SenseConfig::default());
        let minority_ctx =
            RelevanceModel::context_of("the predator left the jungle habitat for the riverbank");

        // Relative boost: the best sense concentrates the minority
        // vocabulary that the pooled model dilutes across 20 snippets.
        let pooled_score = pooled.score_context(&minority_ctx);
        let sense_score = senses.score_context(&minority_ctx);
        assert!(
            sense_score >= pooled_score,
            "sense-aware {sense_score} should not lose to pooled {pooled_score}"
        );
        assert!(senses.best_sense(&minority_ctx).is_some());
    }

    #[test]
    fn unambiguous_concept_single_sense() {
        let mut b = IndexBuilder::new();
        for i in 0..10 {
            b.add_document(&format!(
                "gravity bends light near massive stars physics {i}"
            ));
        }
        let corpus = b.build();
        let log = QueryLog::new();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let senses = builder.mine_snippet_senses(&t("gravity"), &SenseConfig::default());
        assert_eq!(senses.num_senses(), 1, "{:?}", senses.support);
    }

    #[test]
    fn empty_for_unknown_concept() {
        let mut b = IndexBuilder::new();
        b.add_document("something entirely different");
        let corpus = b.build();
        let log = QueryLog::new();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let senses = builder.mine_snippet_senses(&t("missing"), &SenseConfig::default());
        assert!(senses.is_empty());
        assert_eq!(senses.score_context(&HashSet::new()), 0.0);
        assert_eq!(senses.best_sense(&HashSet::new()), None);
    }
}
