//! Relevance-keyword mining and runtime relevance scoring (§IV-B).
//!
//! For each concept `cᵢ` in the supported set `C = {c₁ … cₙ}` we pre-mine
//! the top *m* = 100 relevant context keywords with scores,
//! `relevantTermsᵢ = {(tᵢ₁, sᵢ₁), …, (tᵢₘ, sᵢₘ)}`, from one of three
//! resources:
//!
//! * **search-engine snippets** — the snippets of the first hundred
//!   phrase-query results form one bag-of-words document; keywords are
//!   scored by tf·idf;
//! * **Prisma** — the query-refinement tool's ≤ 20 feedback terms form
//!   the document; tf·idf again;
//! * **related query suggestions** — up to 300 suggestions with their
//!   query frequencies; a term appearing in `k` suggestions scores
//!   `Σᵢ₌₁ᵏ ln(query_freqᵢ) · idf(term)`.
//!
//! All terms are stemmed, lower-cased and punctuation-stripped. At
//! runtime the relevance of a concept in a context is approximated by the
//! summed scores of its pre-mined keywords that co-occur in the context —
//! the "safety net" that keeps general/low-quality concepts down, because
//! their mined keywords never cluster and end up with small scores
//! (§IV-C, Table II).

use ctxrank_index::Index;
use ctxrank_querylog::{Prisma, QueryLog, SuggestionService};
use ctxrank_text::{Interner, TermId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The paper's *m*: keywords kept per concept.
pub const PAPER_M: usize = 100;
/// Snippet results consulted ("the first hundred results").
pub const SNIPPET_RESULTS: usize = 100;
/// Tokens of context kept around each snippet match.
pub const SNIPPET_CONTEXT: usize = 12;

/// How mined keyword tf combines with idf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeywordWeighting {
    /// `tf · idf` with raw term frequency.
    RawTf,
    /// `(1 + ln tf) · idf`.
    LogTf,
    /// `idf` only (presence), tf used just for ranking into the top *m*.
    Presence,
}

/// Which resource the keywords are mined from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MiningResource {
    Snippets,
    Prisma,
    Suggestions,
}

impl MiningResource {
    /// All three resources, in the order Table IV reports them.
    pub const ALL: [MiningResource; 3] = [
        MiningResource::Prisma,
        MiningResource::Suggestions,
        MiningResource::Snippets,
    ];
}

/// The mined keywords of one concept: stemmed terms with scores, sorted
/// descending.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RelevantTerms {
    pub terms: Vec<(String, f64)>,
}

impl RelevantTerms {
    /// Sum of all keyword scores — the Table II "summation" diagnostic.
    pub fn summation(&self) -> f64 {
        self.terms.iter().map(|(_, s)| s).sum()
    }

    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing was mined.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Raw relevance score of this concept in a context given as a set
    /// of stemmed terms: the summed scores of co-occurring keywords.
    pub fn score_context(&self, context: &HashSet<String>) -> f64 {
        self.terms
            .iter()
            .filter(|(t, _)| context.contains(t))
            .map(|(_, s)| s)
            .sum()
    }
}

/// Document-frequency table over *stemmed* terms, for idf of mined
/// keywords (the corpus index itself is unstemmed).
#[derive(Debug, Clone)]
pub struct StemmedIdf {
    df: HashMap<String, u32>,
    num_docs: usize,
}

impl StemmedIdf {
    /// Scan `index` once, counting per-document stemmed-term presence.
    ///
    /// Each vocabulary term is stemmed exactly once (the index interner
    /// makes the vocabulary dense); the per-document pass then walks term
    /// ids and dedups per-doc stems with an epoch table — no per-token
    /// stemming or string hashing.
    pub fn from_index(index: &Index) -> Self {
        let vocab = index.interner().len();
        // term id -> stem id (None for stop-words); stems interned densely.
        let mut stems = Interner::new();
        let mut stem_of: Vec<Option<TermId>> = vec![None; vocab];
        for (id, term) in index.interner().iter() {
            if !ctxrank_text::is_stopword(term) {
                stem_of[id.idx()] = Some(stems.intern(&ctxrank_text::stem(term)));
            }
        }
        let mut df_by_stem: Vec<u32> = vec![0; stems.len()];
        let mut last_doc: Vec<u32> = vec![u32::MAX; stems.len()];
        for d in 0..index.num_docs() {
            let doc = index.doc(ctxrank_index::DocId(d as u32));
            for tid in &doc.term_ids {
                if let Some(sid) = stem_of[tid.idx()] {
                    if last_doc[sid.idx()] != d as u32 {
                        last_doc[sid.idx()] = d as u32;
                        df_by_stem[sid.idx()] += 1;
                    }
                }
            }
        }
        let df: HashMap<String, u32> = stems
            .iter()
            .map(|(sid, stem)| (stem.to_string(), df_by_stem[sid.idx()]))
            .collect();
        Self {
            df,
            num_docs: index.num_docs(),
        }
    }

    /// Smoothed idf of a stemmed term.
    pub fn idf(&self, stem: &str) -> f64 {
        let df = self.df.get(stem).copied().unwrap_or(0) as f64;
        ((self.num_docs as f64 + 1.0) / (df + 1.0)).ln()
    }

    /// Number of distinct stems tracked.
    pub fn len(&self) -> usize {
        self.df.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.df.is_empty()
    }
}

/// Builder that mines [`RelevantTerms`] for concepts.
pub struct RelevanceModelBuilder<'a> {
    corpus: &'a Index,
    stemmed_idf: StemmedIdf,
    suggest: SuggestionService<'a>,
    prisma: Prisma<'a>,
    /// Keywords kept per concept (*m*).
    pub m: usize,
    /// Minimum idf a stemmed keyword needs to be kept. The paper's
    /// web-scale corpus pushes everyday words to negligible tf·idf on its
    /// own; with a synthetic vocabulary this floor plays that role
    /// (see DESIGN.md §1).
    pub min_idf: f64,
    /// Minimum query frequency for a related query to count as a
    /// suggestion (real suggestion services require minimum support,
    /// which is what limits the resource's coverage, §V-A.5).
    pub min_suggestion_freq: u64,
    /// Keyword weighting scheme for the tf·idf resources.
    pub weighting: KeywordWeighting,
}

impl<'a> std::fmt::Debug for RelevanceModelBuilder<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelevanceModelBuilder")
            .field("m", &self.m)
            .finish_non_exhaustive()
    }
}

impl<'a> RelevanceModelBuilder<'a> {
    /// Create a builder over the corpus and query log.
    pub fn new(corpus: &'a Index, log: &'a QueryLog) -> Self {
        Self {
            corpus,
            stemmed_idf: StemmedIdf::from_index(corpus),
            suggest: SuggestionService::new(log),
            prisma: Prisma::new(corpus),
            m: PAPER_M,
            min_idf: 0.0,
            min_suggestion_freq: 1,
            weighting: KeywordWeighting::LogTf,
        }
    }

    /// Access the stemmed-idf table.
    pub fn stemmed_idf(&self) -> &StemmedIdf {
        &self.stemmed_idf
    }

    /// The underlying corpus index.
    pub fn corpus(&self) -> &Index {
        self.corpus
    }

    /// Apply the configured keyword weighting scheme.
    pub fn keyword_weight(&self, tf: usize, idf: f64) -> f64 {
        match self.weighting {
            KeywordWeighting::RawTf => tf as f64 * idf,
            KeywordWeighting::LogTf => ctxrank_index::tf_idf_weight(tf, idf),
            KeywordWeighting::Presence => idf * (1.0 + 1e-6 * tf as f64),
        }
    }

    /// Mine the relevant keywords of one concept from `resource`.
    pub fn mine(&self, concept_terms: &[String], resource: MiningResource) -> RelevantTerms {
        match resource {
            MiningResource::Snippets => self.mine_snippets(concept_terms),
            MiningResource::Prisma => self.mine_prisma(concept_terms),
            MiningResource::Suggestions => self.mine_suggestions(concept_terms),
        }
    }

    /// Build the full model for a set of concepts.
    pub fn build(
        &self,
        concepts: impl IntoIterator<Item = Vec<String>>,
        resource: MiningResource,
    ) -> RelevanceModel {
        let map = concepts
            .into_iter()
            .map(|terms| {
                let mined = self.mine(&terms, resource);
                (terms.join(" "), mined)
            })
            .collect();
        RelevanceModel { map, resource }
    }

    /// Snippets resource: top-100 phrase results, context windows, one
    /// bag of words, tf·idf over stems, top *m*.
    fn mine_snippets(&self, concept_terms: &[String]) -> RelevantTerms {
        let snippets = self
            .corpus
            .phrase_snippets(concept_terms, SNIPPET_RESULTS, SNIPPET_CONTEXT);
        let concept_stems: HashSet<String> = concept_terms
            .iter()
            .map(|t| ctxrank_text::stem(t))
            .collect();
        let mut tf: HashMap<String, usize> = HashMap::new();
        for snip in &snippets {
            for stem in ctxrank_text::stemmed_terms(snip) {
                if !concept_stems.contains(&stem) {
                    *tf.entry(stem).or_insert(0) += 1;
                }
            }
        }
        self.finish_tfidf(tf)
    }

    /// Prisma resource: ≤ 20 feedback terms as one document, tf·idf.
    ///
    /// Unlike the other resources, Prisma's output is consumed as-is —
    /// pseudo-relevance feedback famously drifts toward frequent terms,
    /// and that drift is part of what makes the resource the weakest of
    /// the three (Table IV), so no idf floor is applied here.
    fn mine_prisma(&self, concept_terms: &[String]) -> RelevantTerms {
        let feedback = self.prisma.paper_feedback(concept_terms);
        let mut tf: HashMap<String, usize> = HashMap::new();
        for (term, _) in feedback {
            let stem = ctxrank_text::stem(&term);
            *tf.entry(stem).or_insert(0) += 1;
        }
        let mut terms: Vec<(String, f64)> = tf
            .into_iter()
            .map(|(stem, count)| {
                let idf = self.stemmed_idf.idf(&stem);
                (stem, self.keyword_weight(count, idf))
            })
            .collect();
        self.sort_truncate(&mut terms);
        RelevantTerms { terms }
    }

    /// Suggestions resource: score(term) = Σ ln(freq) · idf(term) over
    /// the suggestions containing the term.
    ///
    /// Suggestions are the refinement queries that contain the whole
    /// concept as a phrase — what a "related searches" service returns.
    /// This is why the resource has the poorest keyword *coverage* of
    /// the three (§V-A.5): tail concepts have few refinement queries, so
    /// their mined keyword sets are tiny.
    fn mine_suggestions(&self, concept_terms: &[String]) -> RelevantTerms {
        let mut suggestions = self
            .suggest
            .phrase_suggestions(concept_terms, ctxrank_querylog::suggest::MAX_SUGGESTIONS);
        suggestions.retain(|s| s.freq >= self.min_suggestion_freq);
        let concept_stems: HashSet<String> = concept_terms
            .iter()
            .map(|t| ctxrank_text::stem(t))
            .collect();
        let mut log_freq_sum: HashMap<String, f64> = HashMap::new();
        for s in &suggestions {
            let mut seen = HashSet::new();
            for term in &s.terms {
                if ctxrank_text::is_stopword(term) {
                    continue;
                }
                let stem = ctxrank_text::stem(term);
                if concept_stems.contains(&stem) || !seen.insert(stem.clone()) {
                    continue;
                }
                *log_freq_sum.entry(stem).or_insert(0.0) += (s.freq.max(1) as f64).ln().max(0.1);
            }
        }
        let mut terms: Vec<(String, f64)> = log_freq_sum
            .into_iter()
            .filter_map(|(stem, lf)| {
                let idf = self.stemmed_idf.idf(&stem);
                if idf < self.min_idf {
                    return None;
                }
                Some((stem, lf * idf))
            })
            .collect();
        self.sort_truncate(&mut terms);
        RelevantTerms { terms }
    }

    fn finish_tfidf(&self, tf: HashMap<String, usize>) -> RelevantTerms {
        let mut terms: Vec<(String, f64)> = tf
            .into_iter()
            .filter_map(|(stem, count)| {
                let idf = self.stemmed_idf.idf(&stem);
                if idf < self.min_idf {
                    return None;
                }
                Some((stem, self.keyword_weight(count, idf)))
            })
            .collect();
        self.sort_truncate(&mut terms);
        RelevantTerms { terms }
    }

    fn sort_truncate(&self, terms: &mut Vec<(String, f64)>) {
        terms.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        terms.truncate(self.m);
    }
}

/// The frozen relevance model: concept surface → mined keywords.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelevanceModel {
    map: HashMap<String, RelevantTerms>,
    pub resource: MiningResource,
}

impl RelevanceModel {
    /// Mined keywords for a concept surface.
    pub fn terms(&self, surface: &str) -> Option<&RelevantTerms> {
        self.map.get(surface)
    }

    /// Number of concepts covered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no concept was mined.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Prepare a context for scoring: the set of stemmed terms of `text`.
    pub fn context_of(text: &str) -> HashSet<String> {
        ctxrank_text::stemmed_terms(text).into_iter().collect()
    }

    /// Raw relevance score of `surface` in a prepared context (0 when the
    /// concept is not in the model).
    pub fn score(&self, surface: &str, context: &HashSet<String>) -> f64 {
        self.map
            .get(surface)
            .map_or(0.0, |t| t.score_context(context))
    }

    /// Log-compressed relevance score, suitable as a learning feature.
    pub fn score_feature(&self, surface: &str, context: &HashSet<String>) -> f64 {
        self.score(surface, context).ln_1p()
    }

    /// Freeze the model into a [`CompiledRelevance`] whose keywords are
    /// interned stem ids, for allocation-lean scoring over many contexts.
    pub fn compile(&self) -> CompiledRelevance {
        let mut stems = Interner::new();
        let map: HashMap<String, Vec<(TermId, f64)>> = self
            .map
            .iter()
            .map(|(surface, rt)| {
                let kws: Vec<(TermId, f64)> = rt
                    .terms
                    .iter()
                    .map(|(stem, score)| (stems.intern(stem), *score))
                    .collect();
                (surface.clone(), kws)
            })
            .collect();
        CompiledRelevance {
            stems,
            map,
            resource: self.resource,
        }
    }
}

/// A [`RelevanceModel`] compiled onto interned keyword-stem ids.
///
/// Contexts become dense presence bitmaps over the model's keyword
/// vocabulary; scoring a concept is then one pass over its keyword list
/// with index probes — no string hashing per (concept, context) pair.
/// Keyword order is preserved from the source model, so floating-point
/// sums are bit-identical to [`RelevantTerms::score_context`].
#[derive(Debug, Clone)]
pub struct CompiledRelevance {
    /// All keyword stems across the model's concepts.
    stems: Interner,
    /// Concept surface → (stem id, score) in mined (descending) order.
    map: HashMap<String, Vec<(TermId, f64)>>,
    pub resource: MiningResource,
}

impl CompiledRelevance {
    /// Number of concepts covered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no concept was mined.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Prepare a context for scoring: a presence bitmap over the model's
    /// keyword vocabulary. Stems outside the vocabulary cannot influence
    /// any score and are dropped.
    pub fn context_of(&self, text: &str) -> Vec<bool> {
        self.context_from_stems(&ctxrank_text::stemmed_terms(text))
    }

    /// Build the presence bitmap from already-stemmed terms, so one
    /// stemming pass can feed several compiled models.
    pub fn context_from_stems(&self, stems: &[String]) -> Vec<bool> {
        let mut present = vec![false; self.stems.len()];
        for stem in stems {
            if let Some(id) = self.stems.get(stem) {
                present[id.idx()] = true;
            }
        }
        present
    }

    /// Raw relevance score of `surface` in a prepared context (0 when the
    /// concept is not in the model). Identical (bit-for-bit) to
    /// [`RelevanceModel::score`] on the equivalent context.
    pub fn score(&self, surface: &str, context: &[bool]) -> f64 {
        self.map.get(surface).map_or(0.0, |kws| {
            kws.iter()
                .filter(|(id, _)| context[id.idx()])
                .map(|(_, s)| s)
                .sum()
        })
    }

    /// Log-compressed relevance score, suitable as a learning feature.
    pub fn score_feature(&self, surface: &str, context: &[bool]) -> f64 {
        self.score(surface, context).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_index::IndexBuilder;

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    /// Corpus where "solar flares" lives among astronomy vocabulary and
    /// "random stuff" appears in scattered contexts.
    fn setup() -> (Index, QueryLog) {
        let mut b = IndexBuilder::new();
        for i in 0..12 {
            b.add_document(&format!(
                "astronomers observed solar flares near sunspot cluster {i} \
                 with telescope arrays measuring radiation"
            ));
        }
        b.add_document("random stuff happened downtown yesterday evening");
        b.add_document("she bought random stuff online cheaply");
        b.add_document("random stuff piled in the garage corner");
        for i in 0..12 {
            b.add_document(&format!("financial markets closed higher on day {i}"));
        }
        let mut log = QueryLog::new();
        log.add("solar flares", 80);
        log.add("solar flares radiation", 30);
        log.add("solar flares telescope", 20);
        log.add("random stuff", 40);
        log.add("random stuff cheap", 5);
        (b.build(), log)
    }

    #[test]
    fn snippets_mine_topical_keywords() {
        let (corpus, log) = setup();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let mined = builder.mine(&t("solar flares"), MiningResource::Snippets);
        assert!(!mined.is_empty());
        let keywords: Vec<&str> = mined.terms.iter().map(|(s, _)| s.as_str()).collect();
        assert!(
            keywords.contains(&ctxrank_text::stem("sunspot").as_str())
                || keywords.contains(&ctxrank_text::stem("telescope").as_str())
                || keywords.contains(&ctxrank_text::stem("radiation").as_str()),
            "{keywords:?}"
        );
    }

    #[test]
    fn concept_terms_excluded_from_own_keywords() {
        let (corpus, log) = setup();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let mined = builder.mine(&t("solar flares"), MiningResource::Snippets);
        let solar = ctxrank_text::stem("solar");
        assert!(mined.terms.iter().all(|(s, _)| *s != solar));
    }

    #[test]
    fn specific_concept_summation_beats_junk() {
        let (corpus, log) = setup();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let specific = builder.mine(&t("solar flares"), MiningResource::Snippets);
        let junk = builder.mine(&t("random stuff"), MiningResource::Snippets);
        assert!(
            specific.summation() > junk.summation(),
            "Table II shape: specific {} must exceed junk {}",
            specific.summation(),
            junk.summation()
        );
    }

    #[test]
    fn runtime_scoring_discriminates_contexts() {
        let (corpus, log) = setup();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let model = builder.build(vec![t("solar flares")], MiningResource::Snippets);
        let on_topic = RelevanceModel::context_of(
            "the telescope recorded intense radiation from the sunspot region",
        );
        let off_topic =
            RelevanceModel::context_of("markets closed higher as financial stocks rallied");
        let s_on = model.score("solar flares", &on_topic);
        let s_off = model.score("solar flares", &off_topic);
        assert!(s_on > s_off, "on-topic {s_on} vs off-topic {s_off}");
    }

    #[test]
    fn prisma_produces_few_terms() {
        let (corpus, log) = setup();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let mined = builder.mine(&t("solar flares"), MiningResource::Prisma);
        // Prisma only ever returns <= 20 feedback terms (the paper notes
        // this limits its usefulness for relevance mining).
        assert!(mined.len() <= 20, "got {}", mined.len());
    }

    #[test]
    fn suggestions_resource_mines_from_related_queries() {
        let (corpus, log) = setup();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let mined = builder.mine(&t("solar flares"), MiningResource::Suggestions);
        let keywords: Vec<&str> = mined.terms.iter().map(|(s, _)| s.as_str()).collect();
        assert!(
            keywords.contains(&ctxrank_text::stem("radiation").as_str())
                || keywords.contains(&ctxrank_text::stem("telescope").as_str()),
            "{keywords:?}"
        );
    }

    #[test]
    fn m_truncation_respected() {
        let (corpus, log) = setup();
        let mut builder = RelevanceModelBuilder::new(&corpus, &log);
        builder.m = 3;
        let mined = builder.mine(&t("solar flares"), MiningResource::Snippets);
        assert!(mined.len() <= 3);
    }

    #[test]
    fn unknown_concept_scores_zero() {
        let (corpus, log) = setup();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let model = builder.build(vec![t("solar flares")], MiningResource::Snippets);
        let ctx = RelevanceModel::context_of("anything at all");
        assert_eq!(model.score("never mined", &ctx), 0.0);
    }

    #[test]
    fn keywords_sorted_descending() {
        let (corpus, log) = setup();
        let builder = RelevanceModelBuilder::new(&corpus, &log);
        let mined = builder.mine(&t("solar flares"), MiningResource::Snippets);
        for w in mined.terms.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn stemmed_idf_counts_documents() {
        let (corpus, _) = setup();
        let idf = StemmedIdf::from_index(&corpus);
        assert!(!idf.is_empty());
        // A word in many documents is cheaper than a rare one.
        assert!(idf.idf(&ctxrank_text::stem("garage")) > idf.idf(&ctxrank_text::stem("solar")));
    }

    #[test]
    fn score_feature_is_log_compressed() {
        let rt = RelevantTerms {
            terms: vec![("x".into(), 10.0)],
        };
        let mut map = HashMap::new();
        map.insert("c".to_string(), rt);
        let model = RelevanceModel {
            map,
            resource: MiningResource::Snippets,
        };
        let ctx: HashSet<String> = ["x".to_string()].into_iter().collect();
        assert!((model.score_feature("c", &ctx) - 11f64.ln()).abs() < 1e-9);
    }
}
