//! The feature space (§IV).
//!
//! Two families of signals feed the learned ranker:
//!
//! * [`interest`] — the nine **interestingness** features of Table I,
//!   capturing whether "a concept would be appealing to a broad user base
//!   in general", mined from query logs, search-engine result counts,
//!   simple text statistics, the taxonomy, and Wikipedia article lengths;
//! * [`relevance`] — the **relevance** machinery of §IV-B: for every
//!   concept, pre-mine its top *m* = 100 context keywords from one of
//!   three resources (search-engine snippets, the Prisma refinement tool,
//!   or related query suggestions), then score a concept in a new context
//!   by the co-occurrence of those keywords. The miner works on stemmed,
//!   lower-cased, punctuation-stripped terms.
//!
//! [`FeatureVector`] assembles both into the 10-dimensional instance the
//! ranking SVM consumes (nine interestingness fields plus the relevance
//! score).

pub mod interest;
pub mod relevance;
pub mod senses;

pub use interest::{FeatureExtractor, InterestFeatures};
pub use relevance::{
    CompiledRelevance, KeywordWeighting, MiningResource, RelevanceModel, RelevanceModelBuilder,
    RelevantTerms, StemmedIdf,
};
pub use senses::{SenseClusters, SenseConfig};

/// A full training/ranking instance: interestingness + relevance.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    pub interest: InterestFeatures,
    /// Log-scaled relevance score of the concept in its context.
    pub relevance: f64,
}

impl FeatureVector {
    /// Dense representation: the nine Table I features followed by the
    /// relevance score.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut v = self.interest.to_dense();
        v.push(self.relevance);
        v
    }

    /// Number of dimensions of [`Self::to_dense`].
    pub const DIM: usize = InterestFeatures::DIM + 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_dimensions_consistent() {
        let fv = FeatureVector {
            interest: InterestFeatures::default(),
            relevance: 0.5,
        };
        assert_eq!(fv.to_dense().len(), FeatureVector::DIM);
        assert_eq!(*fv.to_dense().last().expect("nonempty"), 0.5);
    }
}
