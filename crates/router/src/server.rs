//! The router's HTTP front: a thin listener over [`ScatterGather`].
//!
//! Reuses the serve crate's HTTP/1.1 reader/writer verbatim so the
//! router speaks exactly the wire dialect shards and clients already
//! speak. Unlike the shard server there is no batcher and no worker
//! pool — each connection gets its own handler thread, and the real
//! concurrency lives in the per-request scatter (one scoped thread
//! per shard). Endpoints:
//!
//! * `POST /rank` — scatter, gather, merge; byte-identical body to the
//!   unsharded server's answer.
//! * `GET /healthz` — role, shard count, last uniformly-observed epoch.
//! * `GET /metrics` — Prometheus text (see [`RouterMetrics`]).
//! * `POST /admin/shutdown` — gated by
//!   [`RouterServerConfig::enable_shutdown_endpoint`]; wakes
//!   [`RouterServer::wait_for_shutdown_request`].
//!
//! [`RouterMetrics`]: crate::metrics::RouterMetrics

use crate::ScatterGather;
use ctxrank_serve::http::{read_request_deadline, write_response, HttpError, Request, Response};
use serde_json::json;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Listener knobs. `Default` binds an ephemeral loopback port with the
/// admin shutdown endpoint off.
#[derive(Debug, Clone)]
pub struct RouterServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Idle keep-alive read timeout before a handler drops its
    /// connection.
    pub keep_alive_timeout: Duration,
    /// Total budget from a request's first byte to the end of its body
    /// (slowloris bound, same semantics as the shard server).
    pub request_deadline: Duration,
    /// Expose `POST /admin/shutdown`.
    pub enable_shutdown_endpoint: bool,
    /// `Retry-After` seconds advertised on 503 responses.
    pub retry_after_secs: u32,
}

impl Default for RouterServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            keep_alive_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(10),
            enable_shutdown_endpoint: false,
            retry_after_secs: 1,
        }
    }
}

struct Inner {
    sg: Arc<ScatterGather>,
    config: RouterServerConfig,
    shutting: AtomicBool,
    /// Handler threads still alive (reaped opportunistically by the
    /// acceptor, joined on shutdown).
    handlers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// A running router front. Call [`RouterServer::shutdown`] for a
/// graceful drain; dropping without it aborts the threads unjoined.
pub struct RouterServer {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl RouterServer {
    /// Bind and start serving `sg`. Returns as soon as the listener is
    /// live.
    pub fn start(sg: Arc<ScatterGather>, config: RouterServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            sg,
            config,
            shutting: AtomicBool::new(false),
            handlers: Mutex::new(Vec::new()),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ctxrank-router-acceptor".into())
                .spawn(move || run_acceptor(&inner, listener))
                .expect("spawn acceptor")
        };
        Ok(Self {
            inner,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until a client calls `POST /admin/shutdown` (requires
    /// `enable_shutdown_endpoint`).
    pub fn wait_for_shutdown_request(&self) {
        let mut requested = self
            .inner
            .shutdown_requested
            .lock()
            .expect("shutdown flag poisoned");
        while !*requested {
            requested = self
                .inner
                .shutdown_cv
                .wait(requested)
                .expect("shutdown flag poisoned");
        }
    }

    /// Graceful drain: stop accepting, finish in-flight requests, join
    /// every handler thread.
    pub fn shutdown(mut self) {
        self.inner.shutting.store(true, Ordering::Release);
        // Wake the acceptor out of `accept()`; it checks the flag
        // before handling the throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.acceptor.take() {
            t.join().expect("acceptor panicked");
        }
        let handlers =
            std::mem::take(&mut *self.inner.handlers.lock().expect("handler list poisoned"));
        for t in handlers {
            t.join().expect("handler panicked");
        }
    }
}

fn run_acceptor(inner: &Arc<Inner>, listener: TcpListener) {
    for conn in listener.incoming() {
        if inner.shutting.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let handler = {
            let inner = Arc::clone(inner);
            std::thread::Builder::new()
                .name("ctxrank-router-conn".into())
                .spawn(move || serve_connection(&inner, stream))
                .expect("spawn handler")
        };
        let mut handlers = inner.handlers.lock().expect("handler list poisoned");
        handlers.retain(|h| !h.is_finished());
        handlers.push(handler);
    }
}

fn serve_connection(inner: &Inner, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.config.keep_alive_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Idle timeout must be re-armed each iteration: the request
        // parser re-arms the socket timeout against its own deadline.
        let _ = reader
            .get_ref()
            .set_read_timeout(Some(inner.config.keep_alive_timeout));
        let request = match read_request_deadline(&mut reader, Some(inner.config.request_deadline))
        {
            Ok(Some(req)) => req,
            Ok(None) | Err(HttpError::Io(_)) => return,
            Err(HttpError::Timeout) => {
                let resp = Response::json(408, &json!({"error": "request timed out"}));
                let _ = write_response(&mut writer, &resp, false);
                return;
            }
            Err(HttpError::TooLarge) => {
                let resp = Response::json(413, &json!({"error": "request too large"}));
                let _ = write_response(&mut writer, &resp, false);
                return;
            }
            Err(HttpError::BadRequest(detail)) => {
                let resp = Response::json(400, &json!({"error": detail}));
                let _ = write_response(&mut writer, &resp, false);
                return;
            }
        };
        let keep_alive = request.keep_alive && !inner.shutting.load(Ordering::Acquire);
        let response = dispatch(inner, &request);
        if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

fn dispatch(inner: &Inner, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/rank") => {
            let Ok(body) = std::str::from_utf8(&request.body) else {
                return Response::json(400, &json!({"error": "body is not UTF-8"}));
            };
            match inner.sg.rank(body) {
                Ok(outcome) => outcome.render(),
                Err(e) => {
                    let status = e.status();
                    let resp = Response::json(status, &json!({"error": e.to_string()}));
                    if status == 503 {
                        resp.with_header("retry-after", inner.config.retry_after_secs.to_string())
                    } else {
                        resp
                    }
                }
            }
        }
        ("GET", "/healthz") => Response::json(
            200,
            &json!({
                "status": "ok",
                "role": "router",
                "shards": inner.sg.shard_count(),
                "observed_epoch": inner.sg.observed_epoch(),
            }),
        ),
        ("GET", "/metrics") => Response::text(
            200,
            inner
                .sg
                .metrics()
                .render_prometheus(inner.sg.observed_epoch()),
        ),
        ("POST", "/admin/shutdown") if inner.config.enable_shutdown_endpoint => {
            let mut requested = inner
                .shutdown_requested
                .lock()
                .expect("shutdown flag poisoned");
            *requested = true;
            inner.shutdown_cv.notify_all();
            Response::json(200, &json!({"status": "shutting down"}))
        }
        ("GET" | "POST", _) => Response::json(404, &json!({"error": "no such endpoint"})),
        _ => Response::json(405, &json!({"error": "method not allowed"})),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RouterConfig, ShardSpec};
    use ctxrank_serve::{one_shot, ClientConfig};

    fn start_router(shards: Vec<ShardSpec>) -> RouterServer {
        let sg = Arc::new(ScatterGather::new(
            shards,
            RouterConfig {
                client: ClientConfig {
                    connect_timeout: Duration::from_millis(200),
                    read_timeout: Duration::from_millis(200),
                    retries: 0,
                    ..ClientConfig::default()
                },
                gather_retries: 0,
                retry_backoff: Duration::from_millis(1),
            },
        ));
        RouterServer::start(
            sg,
            RouterServerConfig {
                enable_shutdown_endpoint: true,
                ..RouterServerConfig::default()
            },
        )
        .expect("start router")
    }

    /// A shard spec pointing at a bound-then-dropped port: connects are
    /// refused deterministically.
    fn dead_shard() -> ShardSpec {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        drop(listener);
        ShardSpec::single(addr)
    }

    #[test]
    fn healthz_and_metrics_respond_without_backends() {
        let router = start_router(vec![dead_shard(), dead_shard()]);
        let addr = router.local_addr();
        let (status, _, body) = one_shot(addr, "GET", "/healthz", None).expect("healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"role\":\"router\""), "{body}");
        assert!(body.contains("\"shards\":2"), "{body}");
        let (status, _, body) = one_shot(addr, "GET", "/metrics", None).expect("metrics");
        assert_eq!(status, 200);
        assert!(body.contains("ctxrank_router_fanout_total"), "{body}");
        router.shutdown();
    }

    #[test]
    fn rank_against_dead_shards_is_503_with_retry_after() {
        let router = start_router(vec![dead_shard()]);
        let addr = router.local_addr();
        let (status, headers, body) = one_shot(
            addr,
            "POST",
            "/rank",
            Some(r#"{"text":"x","candidates":["a"]}"#),
        )
        .expect("rank");
        assert_eq!(status, 503, "{body}");
        assert!(
            headers
                .iter()
                .any(|(name, _)| name.eq_ignore_ascii_case("retry-after")),
            "{headers:?}"
        );
        assert!(body.contains("unavailable"), "{body}");
        router.shutdown();
    }

    #[test]
    fn unknown_endpoint_is_404_and_shutdown_wakes_waiter() {
        let router = start_router(vec![dead_shard()]);
        let addr = router.local_addr();
        let (status, _, _) = one_shot(addr, "GET", "/nope", None).expect("404");
        assert_eq!(status, 404);
        let (status, _, _) = one_shot(addr, "POST", "/admin/shutdown", None).expect("shutdown");
        assert_eq!(status, 200);
        router.wait_for_shutdown_request();
        router.shutdown();
    }
}
