//! Router observability: lock-free counters + per-shard latency
//! histograms, rendered in Prometheus text format on the router's own
//! `/metrics`. Mirrors the serve crate's all-atomic registry pattern —
//! recording is a handful of relaxed atomic ops, rendering cumulates
//! bucket counts on the fly.

use ctxrank_serve::LATENCY_BUCKETS_SECS;
use std::sync::atomic::{AtomicU64, Ordering};

/// One latency histogram over the workspace-standard bucket ladder.
/// Buckets store *non-cumulative* counts; `render` cumulates, as the
/// Prometheus exposition format requires.
struct Histogram {
    /// One slot per bucket upper bound, plus the +Inf slot.
    buckets: [AtomicU64; LATENCY_BUCKETS_SECS.len() + 1],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, secs: f64) {
        let slot = LATENCY_BUCKETS_SECS
            .iter()
            .position(|&ub| secs <= ub)
            .unwrap_or(LATENCY_BUCKETS_SECS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add((secs * 1e6) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn render(&self, out: &mut String, name: &str, label: &str) {
        let mut cumulative = 0u64;
        for (i, ub) in LATENCY_BUCKETS_SECS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{{{label},le=\"{ub}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.buckets[LATENCY_BUCKETS_SECS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "{name}_bucket{{{label},le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "{name}_sum{{{label}}} {}\n",
            self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!(
            "{name}_count{{{label}}} {}\n",
            self.count.load(Ordering::Relaxed)
        ));
    }
}

/// The router's metric registry. Sized at construction for a fixed
/// shard count (the partition is static for a router's lifetime).
pub struct RouterMetrics {
    /// Individual shard requests fanned out (scatter size × scatters,
    /// including retry scatters).
    fanout_total: AtomicU64,
    /// Attempts abandoned in favor of the next backend in a shard's
    /// replica set.
    failover_total: AtomicU64,
    /// Gathers discarded because shards answered from different epochs.
    epoch_mismatch_total: AtomicU64,
    /// Merged `/rank` responses served.
    requests_total: AtomicU64,
    /// `/rank` requests that failed after all retries/failovers.
    errors_total: AtomicU64,
    /// Per-shard request latency (successful attempts only).
    shard_latency: Vec<Histogram>,
}

impl RouterMetrics {
    /// A zeroed registry for `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            fanout_total: AtomicU64::new(0),
            failover_total: AtomicU64::new(0),
            epoch_mismatch_total: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            shard_latency: (0..shards).map(|_| Histogram::new()).collect(),
        }
    }

    pub fn record_fanout(&self, shards: usize) {
        self.fanout_total
            .fetch_add(shards as u64, Ordering::Relaxed);
    }

    pub fn record_failover(&self) {
        self.failover_total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_epoch_mismatch(&self) {
        self.epoch_mismatch_total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_request(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_error(&self) {
        self.errors_total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_shard_latency(&self, shard: usize, secs: f64) {
        if let Some(h) = self.shard_latency.get(shard) {
            h.observe(secs);
        }
    }

    pub fn fanout_total(&self) -> u64 {
        self.fanout_total.load(Ordering::Relaxed)
    }

    pub fn failover_total(&self) -> u64 {
        self.failover_total.load(Ordering::Relaxed)
    }

    pub fn epoch_mismatch_total(&self) -> u64 {
        self.epoch_mismatch_total.load(Ordering::Relaxed)
    }

    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// The Prometheus text exposition, stamped with the epoch the
    /// router last observed from a uniform gather.
    pub fn render_prometheus(&self, observed_epoch: u64) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            &mut out,
            "ctxrank_router_fanout_total",
            "Shard requests fanned out by the router.",
            self.fanout_total(),
        );
        counter(
            &mut out,
            "ctxrank_router_failover_total",
            "Shard attempts failed over to the next replica.",
            self.failover_total(),
        );
        counter(
            &mut out,
            "ctxrank_router_epoch_mismatch_total",
            "Gathers discarded for mixing shard epochs.",
            self.epoch_mismatch_total(),
        );
        counter(
            &mut out,
            "ctxrank_router_requests_total",
            "Merged /rank responses served.",
            self.requests_total(),
        );
        counter(
            &mut out,
            "ctxrank_router_errors_total",
            "/rank requests failed after all retries and failovers.",
            self.errors_total.load(Ordering::Relaxed),
        );
        out.push_str(&format!(
            "# HELP ctxrank_router_observed_epoch Epoch of the last uniform gather.\n\
             # TYPE ctxrank_router_observed_epoch gauge\n\
             ctxrank_router_observed_epoch {observed_epoch}\n"
        ));
        out.push_str(
            "# HELP ctxrank_router_shard_latency_seconds Per-shard request latency.\n\
             # TYPE ctxrank_router_shard_latency_seconds histogram\n",
        );
        for (i, h) in self.shard_latency.iter().enumerate() {
            h.render(
                &mut out,
                "ctxrank_router_shard_latency_seconds",
                &format!("shard=\"{i}\""),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render_with_required_names() {
        let m = RouterMetrics::new(2);
        m.record_fanout(2);
        m.record_fanout(2);
        m.record_failover();
        m.record_epoch_mismatch();
        m.record_request();
        m.record_shard_latency(0, 0.003);
        m.record_shard_latency(1, 0.5);
        let text = m.render_prometheus(7);
        assert!(text.contains("ctxrank_router_fanout_total 4"), "{text}");
        assert!(text.contains("ctxrank_router_failover_total 1"), "{text}");
        assert!(
            text.contains("ctxrank_router_epoch_mismatch_total 1"),
            "{text}"
        );
        assert!(text.contains("ctxrank_router_observed_epoch 7"), "{text}");
        assert!(
            text.contains("ctxrank_router_shard_latency_seconds_bucket{shard=\"0\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ctxrank_router_shard_latency_seconds_count{shard=\"1\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_cumulate() {
        let m = RouterMetrics::new(1);
        // One observation well under the first bound, one past the last.
        m.record_shard_latency(0, 0.00001);
        m.record_shard_latency(0, 10.0);
        let text = m.render_prometheus(1);
        assert!(
            text.contains(
                "ctxrank_router_shard_latency_seconds_bucket{shard=\"0\",le=\"0.0001\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains("ctxrank_router_shard_latency_seconds_bucket{shard=\"0\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("ctxrank_router_shard_latency_seconds_count{shard=\"0\"} 2"),
            "{text}"
        );
        // Out-of-range shard index must not panic.
        m.record_shard_latency(9, 1.0);
    }
}
