//! `ctxrank-router` — a scatter-gather front for TID-range-sharded
//! snapshot servers.
//!
//! The single-process server (`ctxrank-serve`) holds the whole
//! [`Snapshot`](ctxrank_framework::Snapshot) in one arena. This crate
//! removes that ceiling: [`partition_snapshot`] splits the concept
//! space by the owning keyword's `TermId` range, one `ctxrank-serve`
//! process per shard loads its slice (plus optional replicas of the
//! same slice), and the router fans every `POST /rank` out to all
//! shards, merges the per-shard rankings, and answers as if it were a
//! single unsharded server.
//!
//! Three properties the router guarantees:
//!
//! * **Bit-identical merges.** Shards rank with the *global*
//!   quantizers, model, and TID table, so any concept scores the same
//!   number on its owning shard as it would unsharded. Each shard
//!   flags which results it *owns* (stores); the router keeps owned
//!   entries, deduplicates globally-unknown candidates (unowned
//!   everywhere, scored identically everywhere) by taking the
//!   lowest-indexed shard's copy, and re-sorts with the exact
//!   comparator the unsharded ranker ends on. The merged body is
//!   byte-equal to the single-process response.
//! * **Epoch-consistent gathers.** Every shard response carries the
//!   epoch it was served from. A gather that mixes epochs — possible
//!   only in the window where a two-phase publish has committed on
//!   some shards but not others — is discarded, counted, and retried;
//!   a merged response provably never mixes epochs.
//! * **Replica failover.** Each shard may list replicas. Connect
//!   refusal, deadline expiry, transport faults, and load-shed
//!   rejections on the primary fall over to the next replica in
//!   order, counted per attempt.
//!
//! The router is usable as a library ([`ScatterGather`]) or as an HTTP
//! server ([`RouterServer`], and the `ctxrank-router` binary). See
//! `DESIGN.md` §15 and `examples/cluster_demo.rs`.
//!
//! [`partition_snapshot`]: ctxrank_framework::partition_snapshot

pub mod metrics;
pub mod server;

pub use metrics::RouterMetrics;
pub use server::{RouterServer, RouterServerConfig};

use ctxrank_framework::RankedConcept;
use ctxrank_serve::client::HttpReply;
use ctxrank_serve::http::Response;
use ctxrank_serve::{render_rank_response, ClientConfig, Conn, RequestError};
use std::cmp::Ordering as CmpOrdering;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Idle keep-alive connections retained per backend. Excess
/// connections are dropped on return rather than pooled.
const MAX_IDLE_PER_BACKEND: usize = 32;

/// One shard of the partition: the primary serving process plus
/// fallback replicas serving the *same* TID range.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    pub primary: SocketAddr,
    pub replicas: Vec<SocketAddr>,
}

impl ShardSpec {
    /// A shard with no replicas.
    pub fn single(primary: SocketAddr) -> Self {
        Self {
            primary,
            replicas: Vec::new(),
        }
    }

    /// Parse `"primary[,replica...]"` (the binary's `--shard` syntax).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut addrs = spec.split(',').map(|part| {
            part.trim()
                .parse::<SocketAddr>()
                .map_err(|e| format!("bad address {:?} in shard spec {spec:?}: {e}", part.trim()))
        });
        let primary = addrs
            .next()
            .ok_or_else(|| format!("empty shard spec {spec:?}"))??;
        let replicas = addrs.collect::<Result<Vec<_>, _>>()?;
        Ok(Self { primary, replicas })
    }

    fn backends(&self) -> impl Iterator<Item = SocketAddr> + '_ {
        std::iter::once(self.primary).chain(self.replicas.iter().copied())
    }
}

/// Scatter policy knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-attempt connect/read budgets for shard requests. The
    /// router owns failover, so `retries` here should stay 0 — a slow
    /// primary should lose to its replica, not be retried in place.
    pub client: ClientConfig,
    /// Whole-scatter retries when a gather mixes epochs (the commit
    /// wave is in flight; the very next scatter usually lands uniform).
    pub gather_retries: u32,
    /// Pause between mixed-epoch retries.
    pub retry_backoff: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            client: ClientConfig {
                connect_timeout: Duration::from_millis(500),
                read_timeout: Duration::from_secs(2),
                retries: 0,
                ..ClientConfig::default()
            },
            gather_retries: 8,
            retry_backoff: Duration::from_millis(2),
        }
    }
}

/// Why a routed `/rank` failed after all failovers and retries.
#[derive(Debug)]
pub enum RouterError {
    /// Every backend of a shard was unreachable or timed out.
    ShardUnavailable { shard: usize, detail: String },
    /// Every backend of a shard answered, but with a non-200 status
    /// (load shed, bad request, …). Carries the last status seen.
    ShardRejected { shard: usize, status: u16 },
    /// A shard answered 200 with a body the router cannot use.
    BadShardResponse { shard: usize, detail: String },
    /// Gathers kept mixing epochs past the retry budget.
    MixedEpochs { epochs: Vec<u64> },
}

impl RouterError {
    /// The HTTP status the router surfaces to its own client:
    /// transient conditions (unavailable shard, shedding shard,
    /// publish in flight) are `503`; a malformed shard reply is `502`.
    pub fn status(&self) -> u16 {
        match self {
            RouterError::BadShardResponse { .. } => 502,
            _ => 503,
        }
    }
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable on all backends: {detail}")
            }
            RouterError::ShardRejected { shard, status } => {
                write!(
                    f,
                    "shard {shard} rejected the request on all backends (last status {status})"
                )
            }
            RouterError::BadShardResponse { shard, detail } => {
                write!(f, "shard {shard} returned an unusable response: {detail}")
            }
            RouterError::MixedEpochs { epochs } => {
                write!(f, "gather mixed epochs {epochs:?} past the retry budget")
            }
        }
    }
}

impl std::error::Error for RouterError {}

/// One parsed shard response: the epoch it was served from plus every
/// ranked candidate with the shard's ownership flag.
#[derive(Debug, Clone)]
struct ShardReply {
    epoch: u64,
    entries: Vec<ShardEntry>,
}

#[derive(Debug, Clone)]
struct ShardEntry {
    surface: String,
    score: f64,
    relevance: f64,
    owned: bool,
}

/// A single-epoch merged ranking.
#[derive(Debug, Clone)]
pub struct RankOutcome {
    /// The epoch *every* contributing shard served from.
    pub epoch: u64,
    pub merged: Vec<RankedConcept>,
}

impl RankOutcome {
    /// Render exactly as the unsharded server would — same serializer,
    /// same bytes.
    pub fn render(&self) -> Response {
        render_rank_response(self.epoch, &self.merged)
    }
}

/// Keep-alive connection stack for one backend address.
struct BackendPool {
    addr: SocketAddr,
    idle: Mutex<Vec<Conn>>,
}

/// The scatter-gather core: fan a `/rank` body out to every shard
/// (with per-shard replica failover), reject mixed-epoch gathers, and
/// merge the survivors into the unsharded ranking. Drivable directly
/// from tests; [`RouterServer`] puts an HTTP listener in front.
pub struct ScatterGather {
    shards: Vec<ShardSpec>,
    config: RouterConfig,
    metrics: Arc<RouterMetrics>,
    /// Per shard, per backend (primary first) idle-connection pools.
    pools: Vec<Vec<BackendPool>>,
    /// Highest epoch ever observed in a uniform gather.
    observed_epoch: AtomicU64,
}

impl ScatterGather {
    /// # Panics
    /// If `shards` is empty — a router over nothing routes nothing.
    pub fn new(shards: Vec<ShardSpec>, config: RouterConfig) -> Self {
        assert!(!shards.is_empty(), "router needs at least one shard");
        let pools = shards
            .iter()
            .map(|spec| {
                spec.backends()
                    .map(|addr| BackendPool {
                        addr,
                        idle: Mutex::new(Vec::new()),
                    })
                    .collect()
            })
            .collect();
        let metrics = Arc::new(RouterMetrics::new(shards.len()));
        Self {
            shards,
            config,
            metrics,
            pools,
            observed_epoch: AtomicU64::new(0),
        }
    }

    pub fn metrics(&self) -> &Arc<RouterMetrics> {
        &self.metrics
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Highest epoch seen in any uniform gather so far (0 before the
    /// first success).
    pub fn observed_epoch(&self) -> u64 {
        self.observed_epoch.load(Ordering::Acquire)
    }

    /// Route one `/rank` request body. Scatters to all shards, fails
    /// over inside each shard, retries the whole scatter while the
    /// gather mixes epochs, then merges.
    pub fn rank(&self, body: &str) -> Result<RankOutcome, RouterError> {
        let mut mixed: Option<RouterError> = None;
        for attempt in 0..=self.config.gather_retries {
            if attempt > 0 {
                std::thread::sleep(self.config.retry_backoff);
            }
            let mut replies = Vec::with_capacity(self.shards.len());
            for result in self.scatter(body) {
                match result {
                    Ok(reply) => replies.push(reply),
                    Err(e) => {
                        // Availability/shape failures are terminal for
                        // this request: a dead shard will not revive
                        // within the retry budget, and a 4xx reject is
                        // the client's fault on every shard equally.
                        self.metrics.record_error();
                        return Err(e);
                    }
                }
            }
            let epoch = replies[0].epoch;
            if replies.iter().all(|r| r.epoch == epoch) {
                self.observed_epoch.fetch_max(epoch, Ordering::AcqRel);
                self.metrics.record_request();
                return Ok(RankOutcome {
                    epoch,
                    merged: merge_replies(&replies),
                });
            }
            self.metrics.record_epoch_mismatch();
            mixed = Some(RouterError::MixedEpochs {
                epochs: replies.iter().map(|r| r.epoch).collect(),
            });
        }
        self.metrics.record_error();
        Err(mixed.expect("loop ran at least once"))
    }

    /// One fan-out wave: every shard queried concurrently (scoped
    /// threads — the scatter is the latency-critical path and shard
    /// count is small), results in shard order.
    fn scatter(&self, body: &str) -> Vec<Result<ShardReply, RouterError>> {
        self.metrics.record_fanout(self.shards.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.shards.len())
                .map(|shard| scope.spawn(move || self.query_shard(shard, body)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard query thread panicked"))
                .collect()
        })
    }

    /// Query one shard, walking primary → replicas until a backend
    /// yields a 200. Non-200 statuses and transport errors both fall
    /// over; a parse failure does not (the data is wrong, not the
    /// availability).
    fn query_shard(&self, shard: usize, body: &str) -> Result<ShardReply, RouterError> {
        let mut last: Option<RouterError> = None;
        for (backend, pool) in self.pools[shard].iter().enumerate() {
            if backend > 0 {
                self.metrics.record_failover();
            }
            let started = Instant::now();
            match self.attempt(pool, body) {
                Ok((200, _headers, text)) => {
                    self.metrics
                        .record_shard_latency(shard, started.elapsed().as_secs_f64());
                    return parse_shard_reply(shard, &text);
                }
                Ok((status, _headers, _body)) => {
                    last = Some(RouterError::ShardRejected { shard, status });
                }
                Err(e) => {
                    last = Some(RouterError::ShardUnavailable {
                        shard,
                        detail: e.to_string(),
                    });
                }
            }
        }
        Err(last.expect("every shard has at least a primary"))
    }

    /// One request against one backend, reusing a pooled keep-alive
    /// connection when available. A pooled connection that fails gets
    /// one fresh-connect redo before the backend is declared failed —
    /// the server may simply have reaped an idle socket.
    fn attempt(&self, pool: &BackendPool, body: &str) -> Result<HttpReply, RequestError> {
        let pooled = pool.idle.lock().expect("pool poisoned").pop();
        if let Some(mut conn) = pooled {
            if let Ok(reply) = conn.request("POST", "/rank", Some(body)) {
                self.park(pool, conn);
                return Ok(reply);
            }
        }
        let mut conn = Conn::connect_with(pool.addr, &self.config.client)
            .map_err(|e| RequestError::classify(pool.addr, e))?;
        let reply = conn
            .request("POST", "/rank", Some(body))
            .map_err(|e| RequestError::classify(pool.addr, e))?;
        self.park(pool, conn);
        Ok(reply)
    }

    fn park(&self, pool: &BackendPool, conn: Conn) {
        let mut idle = pool.idle.lock().expect("pool poisoned");
        if idle.len() < MAX_IDLE_PER_BACKEND {
            idle.push(conn);
        }
    }
}

/// Parse a shard-mode `/rank` body:
/// `{"epoch":E,"results":[{"surface":…,"score":…,"relevance":…,"owned":…},…]}`.
fn parse_shard_reply(shard: usize, text: &str) -> Result<ShardReply, RouterError> {
    let bad = |detail: &str| RouterError::BadShardResponse {
        shard,
        detail: detail.to_string(),
    };
    let value: serde_json::Value =
        serde_json::from_str(text).map_err(|_| bad("response is not valid JSON"))?;
    let epoch = value
        .get("epoch")
        .and_then(|e| e.as_u64())
        .ok_or_else(|| bad("missing \"epoch\""))?;
    let Some(serde_json::Value::Seq(items)) = value.get("results") else {
        return Err(bad("missing \"results\" array"));
    };
    let mut entries = Vec::with_capacity(items.len());
    for item in items {
        let surface = item
            .get("surface")
            .and_then(|s| s.as_str())
            .ok_or_else(|| bad("result missing \"surface\""))?
            .to_string();
        // A non-finite score serializes as `null`; map it back to NaN
        // so the merge comparator (partial_cmp → Equal) and re-render
        // (→ `null`) round-trip it unchanged.
        let score = match item.get("score") {
            Some(serde_json::Value::Null) => f64::NAN,
            Some(x) => x.as_f64().ok_or_else(|| bad("non-numeric \"score\""))?,
            None => return Err(bad("result missing \"score\"")),
        };
        let relevance = match item.get("relevance") {
            Some(serde_json::Value::Null) => f64::NAN,
            Some(x) => x.as_f64().ok_or_else(|| bad("non-numeric \"relevance\""))?,
            None => return Err(bad("result missing \"relevance\"")),
        };
        let owned = match item.get("owned") {
            Some(serde_json::Value::Bool(b)) => *b,
            _ => {
                return Err(bad(
                    "result missing \"owned\" flag — is the shard running with --shard bounds?",
                ))
            }
        };
        entries.push(ShardEntry {
            surface,
            score,
            relevance,
            owned,
        });
    }
    Ok(ShardReply { epoch, entries })
}

/// Merge per-shard rankings into the unsharded ranking.
///
/// Every shard ranks *all* candidates (unknown ones score on zeroed
/// features, identically everywhere), so each candidate appears in
/// every reply. Ownership decides which copy survives:
///
/// * a candidate stored in the snapshot is **owned by exactly one
///   shard** (the partition is a disjoint cover) — keep owned entries
///   from all shards;
/// * a candidate stored nowhere is unowned in every reply with
///   identical numbers — keep the lowest-indexed shard's copies,
///   which also preserves duplicate-candidate multiplicity.
///
/// The final sort key `(score desc, surface asc, relevance desc)` is
/// exactly the total order the unsharded ranker's last stable sort
/// leaves its output in, so the merged vector is element-identical to
/// `ServiceHandle::rank_batch_online` on the full snapshot.
fn merge_replies(replies: &[ShardReply]) -> Vec<RankedConcept> {
    let owned_surfaces: std::collections::HashSet<&str> = replies
        .iter()
        .flat_map(|r| r.entries.iter())
        .filter(|e| e.owned)
        .map(|e| e.surface.as_str())
        .collect();
    let mut merged: Vec<&ShardEntry> = replies
        .iter()
        .flat_map(|r| r.entries.iter())
        .filter(|e| e.owned)
        .collect();
    merged.extend(
        replies[0]
            .entries
            .iter()
            .filter(|e| !e.owned && !owned_surfaces.contains(e.surface.as_str())),
    );
    merged.sort_by(|a, b| merge_cmp(a, b));
    merged
        .into_iter()
        .map(|e| RankedConcept {
            surface: e.surface.clone(),
            score: e.score,
            relevance: e.relevance,
        })
        .collect()
}

fn merge_cmp(a: &ShardEntry, b: &ShardEntry) -> CmpOrdering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(CmpOrdering::Equal)
        .then_with(|| a.surface.cmp(&b.surface))
        .then_with(|| {
            b.relevance
                .partial_cmp(&a.relevance)
                .unwrap_or(CmpOrdering::Equal)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(surface: &str, score: f64, relevance: f64, owned: bool) -> ShardEntry {
        ShardEntry {
            surface: surface.to_string(),
            score,
            relevance,
            owned,
        }
    }

    #[test]
    fn shard_spec_parses_primary_and_replicas() {
        let spec = ShardSpec::parse("127.0.0.1:7980,127.0.0.1:7981, 127.0.0.1:7982").unwrap();
        assert_eq!(spec.primary, "127.0.0.1:7980".parse().unwrap());
        assert_eq!(spec.replicas.len(), 2);
        assert!(ShardSpec::parse("not-an-addr").is_err());
    }

    #[test]
    fn parse_shard_reply_reads_epoch_owned_and_scores() {
        let body = r#"{"epoch":42,"results":[
            {"surface":"alpha","score":1.5,"relevance":3,"owned":true},
            {"surface":"zeta","score":null,"relevance":0,"owned":false}]}"#;
        let reply = parse_shard_reply(0, body).unwrap();
        assert_eq!(reply.epoch, 42);
        assert_eq!(reply.entries.len(), 2);
        assert!(reply.entries[0].owned);
        assert_eq!(reply.entries[0].score, 1.5);
        assert_eq!(reply.entries[0].relevance, 3.0);
        assert!(reply.entries[1].score.is_nan());
        // A plain (unsharded) response lacks the owned flag — rejected
        // loudly instead of silently merging garbage.
        let plain = r#"{"epoch":1,"results":[{"surface":"a","score":1,"relevance":1}]}"#;
        let err = parse_shard_reply(3, plain).unwrap_err();
        assert!(
            matches!(err, RouterError::BadShardResponse { shard: 3, .. }),
            "{err}"
        );
    }

    #[test]
    fn merge_keeps_owned_entries_and_dedups_unknown_candidates() {
        // Candidate "known0" owned by shard 0, "known1" by shard 1,
        // "ghost" known nowhere (identical unowned copies everywhere).
        let shard0 = ShardReply {
            epoch: 5,
            entries: vec![
                entry("known0", 2.0, 1.0, true),
                entry("known1", 0.1, 0.0, false),
                entry("ghost", 0.05, 0.0, false),
            ],
        };
        let shard1 = ShardReply {
            epoch: 5,
            entries: vec![
                entry("known0", 0.1, 0.0, false),
                entry("known1", 3.0, 2.0, true),
                entry("ghost", 0.05, 0.0, false),
            ],
        };
        let merged = merge_replies(&[shard0, shard1]);
        let surfaces: Vec<&str> = merged.iter().map(|r| r.surface.as_str()).collect();
        assert_eq!(surfaces, vec!["known1", "known0", "ghost"]);
        // The owned copies won: known1 carries shard 1's score.
        assert_eq!(merged[0].score, 3.0);
        assert_eq!(merged[1].score, 2.0);
    }

    #[test]
    fn merge_preserves_duplicate_unknown_candidates() {
        // The unsharded server ranks a duplicated candidate twice; the
        // merge must keep both copies (from the lowest shard only).
        let dup = |n| ShardReply {
            epoch: 1,
            entries: vec![entry("ghost", 0.5, 0.0, false); n],
        };
        let merged = merge_replies(&[dup(2), dup(2)]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_order_matches_unsharded_comparator() {
        // Equal scores break by surface ascending; equal (score,
        // surface) would break by relevance descending.
        let reply = ShardReply {
            epoch: 1,
            entries: vec![
                entry("b", 1.0, 9.0, true),
                entry("a", 1.0, 0.0, true),
                entry("c", 2.0, 0.0, true),
            ],
        };
        let merged = merge_replies(&[reply]);
        let surfaces: Vec<&str> = merged.iter().map(|r| r.surface.as_str()).collect();
        assert_eq!(surfaces, vec!["c", "a", "b"]);
    }

    #[test]
    fn router_error_statuses() {
        assert_eq!(
            RouterError::MixedEpochs { epochs: vec![1, 2] }.status(),
            503
        );
        assert_eq!(
            RouterError::BadShardResponse {
                shard: 0,
                detail: String::new()
            }
            .status(),
            502
        );
        assert_eq!(
            RouterError::ShardUnavailable {
                shard: 0,
                detail: String::new()
            }
            .status(),
            503
        );
    }
}
