//! `ctxrank-router` — run the scatter-gather router as a process.
//!
//! ```text
//! ctxrank-router --addr 127.0.0.1:7979 \
//!     --shard 127.0.0.1:7980,127.0.0.1:7982 \
//!     --shard 127.0.0.1:7981
//! ```
//!
//! Each `--shard` names one partition: the primary first, then any
//! replicas, comma-separated. Shards must be `ctxrank-serve` processes
//! started in shard mode (`ServeConfig::as_shard`) so their `/rank`
//! results carry ownership flags. Stop with `POST /admin/shutdown`.

use ctxrank_router::{RouterConfig, RouterServer, RouterServerConfig, ScatterGather, ShardSpec};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: ctxrank-router --addr HOST:PORT --shard PRIMARY[,REPLICA...] [--shard ...]\n\
         \n\
         options:\n\
           --addr HOST:PORT        listen address (default 127.0.0.1:7979)\n\
           --shard SPEC            one shard: primary[,replica...]; repeatable, shard\n\
                                   order must match the partition order (shard 0 first)\n\
           --shard-timeout-ms N    per-attempt connect/read budget (default 2000)\n\
           --gather-retries N      mixed-epoch whole-scatter retries (default 8)"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7979".to_string();
    let mut shards: Vec<ShardSpec> = Vec::new();
    let mut config = RouterConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--shard" => match ShardSpec::parse(&value("--shard")) {
                Ok(spec) => shards.push(spec),
                Err(e) => {
                    eprintln!("{e}");
                    usage()
                }
            },
            "--shard-timeout-ms" => {
                let ms: u64 = value("--shard-timeout-ms").parse().unwrap_or_else(|_| {
                    eprintln!("--shard-timeout-ms wants an integer");
                    usage()
                });
                config.client.connect_timeout = Duration::from_millis(ms);
                config.client.read_timeout = Duration::from_millis(ms);
            }
            "--gather-retries" => {
                config.gather_retries = value("--gather-retries").parse().unwrap_or_else(|_| {
                    eprintln!("--gather-retries wants an integer");
                    usage()
                });
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if shards.is_empty() {
        eprintln!("at least one --shard is required");
        usage();
    }

    let shard_count = shards.len();
    let sg = Arc::new(ScatterGather::new(shards, config));
    let server = RouterServer::start(
        sg,
        RouterServerConfig {
            addr,
            enable_shutdown_endpoint: true,
            ..RouterServerConfig::default()
        },
    )
    .expect("bind router listener");
    println!(
        "ctxrank-router listening on http://{} ({} shard(s)); stop with POST /admin/shutdown",
        server.local_addr(),
        shard_count
    );
    server.wait_for_shutdown_request();
    server.shutdown();
    println!("router drained");
}
