//! Random Fourier features — the RBF kernel approximation.
//!
//! Rahimi & Recht's construction: for the Gaussian kernel
//! `k(x, y) = exp(−γ‖x − y‖²)`, draw `D` frequency vectors
//! `ωᵢ ~ N(0, 2γ I)` and phases `bᵢ ~ U[0, 2π)`; the map
//! `z(x) = √(2/D) · [cos(ω₁·x + b₁), …, cos(ω_D·x + b_D)]`
//! satisfies `E[z(x)·z(y)] = k(x, y)`. Training a linear ranking SVM on
//! `z(x)` approximates the kernelized ranking SVM the paper ran through
//! SVM-light's RBF mode.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A frozen random Fourier feature map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RffMap {
    /// `D × d` frequency matrix, row-major.
    omega: Vec<Vec<f64>>,
    /// `D` phases.
    phase: Vec<f64>,
    /// Output scale `√(2/D)`.
    scale: f64,
}

impl RffMap {
    /// Draw a map for inputs of dimension `input_dim`, output dimension
    /// `output_dim`, bandwidth `gamma`.
    pub fn new(seed: u64, input_dim: usize, output_dim: usize, gamma: f64) -> Self {
        assert!(
            input_dim > 0 && output_dim > 0,
            "dimensions must be positive"
        );
        assert!(gamma > 0.0, "gamma must be positive");
        let mut r = StdRng::seed_from_u64(seed ^ 0x8ff);
        let sd = (2.0 * gamma).sqrt();
        let omega = (0..output_dim)
            .map(|_| (0..input_dim).map(|_| sd * normal(&mut r)).collect())
            .collect();
        let phase = (0..output_dim)
            .map(|_| r.random::<f64>() * std::f64::consts::TAU)
            .collect();
        Self {
            omega,
            phase,
            scale: (2.0 / output_dim as f64).sqrt(),
        }
    }

    /// Map an input vector into the feature space.
    pub fn map(&self, x: &[f64]) -> Vec<f64> {
        self.omega
            .iter()
            .zip(&self.phase)
            .map(|(w, &b)| {
                let dot: f64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum();
                self.scale * (dot + b).cos()
            })
            .collect()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.omega.len()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.omega.first().map_or(0, Vec::len)
    }
}

/// Box–Muller standard normal (kept private; `ctxrank-ltr` has no other
/// need for a sampling library).
fn normal(r: &mut StdRng) -> f64 {
    let u1: f64 = r.random::<f64>().max(1e-12);
    let u2: f64 = r.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(x: &[f64], y: &[f64], gamma: f64) -> f64 {
        let d2: f64 = x.iter().zip(y).map(|(a, b)| (a - b).powi(2)).sum();
        (-gamma * d2).exp()
    }

    #[test]
    fn approximates_gaussian_kernel() {
        let gamma = 0.5;
        let map = RffMap::new(1, 4, 4096, gamma);
        let x = [0.3, -0.7, 1.2, 0.0];
        let y = [0.1, 0.2, 0.9, -0.5];
        let zx = map.map(&x);
        let zy = map.map(&y);
        let approx: f64 = zx.iter().zip(&zy).map(|(a, b)| a * b).sum();
        let exact = kernel(&x, &y, gamma);
        assert!(
            (approx - exact).abs() < 0.05,
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn self_similarity_near_one() {
        let map = RffMap::new(2, 3, 4096, 1.0);
        let x = [0.5, 0.5, 0.5];
        let z = map.map(&x);
        let s: f64 = z.iter().map(|v| v * v).sum();
        assert!((s - 1.0).abs() < 0.05, "self-similarity {s}");
    }

    #[test]
    fn deterministic_by_seed() {
        let a = RffMap::new(9, 3, 64, 0.7);
        let b = RffMap::new(9, 3, 64, 0.7);
        assert_eq!(a.map(&[1.0, 2.0, 3.0]), b.map(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn dimensions() {
        let map = RffMap::new(3, 5, 128, 0.3);
        assert_eq!(map.output_dim(), 128);
        assert_eq!(map.input_dim(), 5);
        assert_eq!(map.map(&[0.0; 5]).len(), 128);
    }

    #[test]
    #[should_panic]
    fn zero_gamma_rejected() {
        let _ = RffMap::new(1, 2, 4, 0.0);
    }
}
