//! Deterministic k-fold cross-validation.
//!
//! §V-A.3: "we followed the five-fold cross-validation process: We
//! randomly partitioned our document set into five subsets, used four
//! subsets for training and the remaining subset for testing. We
//! repeated this five times to ensure the learned model is tested on
//! each unseen subset."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A k-fold splitter over item indices.
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Partition `n` items into `k` folds after a seeded shuffle.
    ///
    /// # Panics
    /// Panics when `k == 0` or `k > n`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one fold");
        assert!(k <= n, "cannot make {k} folds from {n} items");
        let mut order: Vec<usize> = (0..n).collect();
        let mut r = StdRng::seed_from_u64(seed ^ 0xf01d);
        for i in (1..n).rev() {
            let j = r.random_range(0..=i);
            order.swap(i, j);
        }
        let mut folds = vec![Vec::with_capacity(n / k + 1); k];
        for (pos, idx) in order.into_iter().enumerate() {
            folds[pos % k].push(idx);
        }
        Self { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// The held-out test indices of fold `f`.
    pub fn test_indices(&self, f: usize) -> &[usize] {
        &self.folds[f]
    }

    /// The training indices of fold `f` (everything not in fold `f`).
    pub fn train_indices(&self, f: usize) -> Vec<usize> {
        self.folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != f)
            .flat_map(|(_, fold)| fold.iter().copied())
            .collect()
    }

    /// Iterate `(train, test)` splits.
    pub fn splits(&self) -> impl Iterator<Item = (Vec<usize>, &[usize])> {
        (0..self.k()).map(|f| (self.train_indices(f), self.test_indices(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn folds_partition_all_items() {
        let kf = KFold::new(23, 5, 1);
        let mut seen = HashSet::new();
        for f in 0..5 {
            for &i in kf.test_indices(f) {
                assert!(seen.insert(i), "index {i} in two folds");
            }
        }
        assert_eq!(seen.len(), 23);
    }

    #[test]
    fn folds_are_balanced() {
        let kf = KFold::new(100, 5, 2);
        for f in 0..5 {
            assert_eq!(kf.test_indices(f).len(), 20);
        }
    }

    #[test]
    fn train_test_disjoint_and_complete() {
        let kf = KFold::new(17, 4, 3);
        for (train, test) in kf.splits() {
            let train_set: HashSet<_> = train.iter().copied().collect();
            let test_set: HashSet<_> = test.iter().copied().collect();
            assert!(train_set.is_disjoint(&test_set));
            assert_eq!(train_set.len() + test_set.len(), 17);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = KFold::new(50, 5, 9);
        let b = KFold::new(50, 5, 9);
        for f in 0..5 {
            assert_eq!(a.test_indices(f), b.test_indices(f));
        }
        let c = KFold::new(50, 5, 10);
        assert_ne!(a.test_indices(0), c.test_indices(0));
    }

    #[test]
    fn shuffling_actually_happens() {
        let kf = KFold::new(100, 2, 4);
        // Fold 0 should not be exactly the even numbers 0..50.
        let sorted: Vec<usize> = {
            let mut v = kf.test_indices(0).to_vec();
            v.sort_unstable();
            v
        };
        assert_ne!(sorted, (0..100).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn too_many_folds_panics() {
        let _ = KFold::new(3, 5, 0);
    }
}
