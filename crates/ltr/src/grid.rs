//! Hyper-parameter selection for the ranking SVM.
//!
//! The paper runs SVM-light/LIBLINEAR "with the default parameters" and
//! reports the better kernel (§V-A.3). A downstream user adopting this
//! crate will want the selection automated: [`grid_search`] evaluates a
//! candidate grid under group-level cross-validation and returns the
//! configuration with the best held-out weighted pairwise accuracy.

use crate::cv::KFold;
use crate::train::{train, KernelKind, RankGroup, RankModel, SvmConfig};

/// The candidate grid. Every combination of the three axes is tried.
#[derive(Debug, Clone)]
pub struct Grid {
    pub lambdas: Vec<f64>,
    pub epochs: Vec<usize>,
    pub kernels: Vec<KernelKind>,
}

impl Default for Grid {
    fn default() -> Self {
        Self {
            lambdas: vec![1e-3, 1e-4, 1e-5],
            epochs: vec![20],
            kernels: vec![
                KernelKind::Linear,
                KernelKind::Rbf {
                    gamma: 0.1,
                    dim: 256,
                },
            ],
        }
    }
}

/// Outcome of a grid search.
#[derive(Debug, Clone)]
pub struct GridOutcome {
    /// The winning configuration.
    pub config: SvmConfig,
    /// Its cross-validated weighted error (CTR-gap-weighted fraction of
    /// mispredicted preference pairs, the same quantity Eq. 5 reports).
    pub cv_weighted_error: f64,
    /// Every `(config, cv error)` evaluated, in grid order.
    pub trials: Vec<(SvmConfig, f64)>,
}

/// Weighted pairwise error of `model` on `groups`.
fn weighted_error(model: &RankModel, groups: &[&RankGroup]) -> f64 {
    let mut mistaken = 0.0;
    let mut total = 0.0;
    for g in groups {
        let scores: Vec<f64> = g
            .instances
            .iter()
            .map(|i| model.score(&i.features))
            .collect();
        for a in 0..g.instances.len() {
            for b in 0..g.instances.len() {
                let gap = g.instances[a].label - g.instances[b].label;
                if gap > 0.0 {
                    total += gap;
                    if scores[a] < scores[b] {
                        mistaken += gap;
                    } else if scores[a] == scores[b] {
                        mistaken += 0.5 * gap;
                    }
                }
            }
        }
    }
    if total <= 0.0 {
        0.0
    } else {
        mistaken / total
    }
}

/// Run `k_folds` cross-validation for every grid point and pick the
/// configuration with the lowest held-out weighted error.
///
/// # Panics
/// Panics when `groups` has fewer than `k_folds` members or the grid is
/// empty.
pub fn grid_search(groups: &[RankGroup], grid: &Grid, k_folds: usize, seed: u64) -> GridOutcome {
    assert!(
        !grid.lambdas.is_empty() && !grid.epochs.is_empty() && !grid.kernels.is_empty(),
        "empty grid"
    );
    let kf = KFold::new(groups.len(), k_folds, seed);
    let mut trials = Vec::new();
    let mut best: Option<(SvmConfig, f64)> = None;

    for &kernel in &grid.kernels {
        for &lambda in &grid.lambdas {
            for &epochs in &grid.epochs {
                let config = SvmConfig {
                    kernel,
                    lambda,
                    epochs,
                    seed,
                    ..SvmConfig::default()
                };
                let mut mistaken_total = (0.0, 0.0);
                for f in 0..k_folds {
                    let train_groups: Vec<RankGroup> = kf
                        .train_indices(f)
                        .iter()
                        .map(|&i| groups[i].clone())
                        .filter(|g| {
                            g.instances
                                .iter()
                                .any(|a| g.instances.iter().any(|b| a.label > b.label))
                        })
                        .collect();
                    if train_groups.is_empty() {
                        continue;
                    }
                    let model = train(&train_groups, &config);
                    let test: Vec<&RankGroup> =
                        kf.test_indices(f).iter().map(|&i| &groups[i]).collect();
                    // Accumulate weighted mistakes across folds.
                    let e = weighted_error(&model, &test);
                    // weighted_error returns a ratio; to aggregate fairly
                    // across folds of slightly different sizes we weight
                    // by the fold's group count.
                    mistaken_total.0 += e * test.len() as f64;
                    mistaken_total.1 += test.len() as f64;
                }
                let cv = if mistaken_total.1 > 0.0 {
                    mistaken_total.0 / mistaken_total.1
                } else {
                    1.0
                };
                trials.push((config.clone(), cv));
                if best.as_ref().is_none_or(|(_, b)| cv < *b) {
                    best = Some((config, cv));
                }
            }
        }
    }
    let (config, cv_weighted_error) = best.expect("non-empty grid");
    GridOutcome {
        config,
        cv_weighted_error,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linear_task(seed: u64, n: usize) -> Vec<RankGroup> {
        let mut r = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                RankGroup::from_pairs((0..5).map(|_| {
                    let x: f64 = r.random();
                    let y: f64 = r.random();
                    (vec![x, y], 3.0 * x - y)
                }))
            })
            .collect()
    }

    #[test]
    fn finds_a_good_configuration() {
        let groups = linear_task(1, 40);
        let out = grid_search(&groups, &Grid::default(), 4, 9);
        assert!(
            out.cv_weighted_error < 0.15,
            "cv error {}",
            out.cv_weighted_error
        );
        assert_eq!(out.trials.len(), 3 * 2);
        // Every trial's error is a valid rate.
        for (_, e) in &out.trials {
            assert!((0.0..=1.0).contains(e));
        }
    }

    #[test]
    fn best_is_minimum_of_trials() {
        let groups = linear_task(2, 25);
        let out = grid_search(&groups, &Grid::default(), 5, 3);
        let min = out
            .trials
            .iter()
            .map(|(_, e)| *e)
            .fold(f64::INFINITY, f64::min);
        assert!((out.cv_weighted_error - min).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let groups = linear_task(3, 20);
        let a = grid_search(&groups, &Grid::default(), 4, 11);
        let b = grid_search(&groups, &Grid::default(), 4, 11);
        assert_eq!(a.cv_weighted_error, b.cv_weighted_error);
        assert_eq!(a.config.lambda, b.config.lambda);
    }

    #[test]
    #[should_panic]
    fn empty_grid_panics() {
        let groups = linear_task(4, 10);
        let grid = Grid {
            lambdas: vec![],
            ..Grid::default()
        };
        let _ = grid_search(&groups, &grid, 2, 0);
    }
}
