//! Per-dimension feature standardization.
//!
//! Fitted on training folds only and baked into the model, so test
//! instances are transformed with training statistics (no leakage).

use serde::{Deserialize, Serialize};

/// Standardizes features to zero mean, unit variance per dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    mean: Vec<f64>,
    /// Inverse standard deviation (0 for constant dimensions, which are
    /// mapped to 0).
    inv_sd: Vec<f64>,
}

impl Scaler {
    /// Fit on a set of instances.
    ///
    /// # Panics
    /// Panics if `rows` is empty or rows have inconsistent lengths.
    pub fn fit<'a>(rows: impl IntoIterator<Item = &'a [f64]>) -> Self {
        let mut rows_iter = rows.into_iter();
        let first = rows_iter
            .next()
            .expect("Scaler::fit needs at least one row");
        let dim = first.len();
        let mut n = 1.0;
        let mut mean = first.to_vec();
        let mut m2 = vec![0.0; dim];
        for row in rows_iter {
            assert_eq!(row.len(), dim, "inconsistent feature dimension");
            n += 1.0;
            for d in 0..dim {
                // Welford's online algorithm.
                let delta = row[d] - mean[d];
                mean[d] += delta / n;
                m2[d] += delta * (row[d] - mean[d]);
            }
        }
        let inv_sd = m2
            .iter()
            .map(|&m| {
                let var = m / n;
                if var > 1e-24 {
                    1.0 / var.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        Self { mean, inv_sd }
    }

    /// Transform one row in place.
    pub fn apply(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.mean.len(), "dimension mismatch");
        for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.inv_sd) {
            *v = (*v - m) * s;
        }
    }

    /// Transform a copy.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        self.apply(&mut out);
        out
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_mean_and_variance() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let scaler = Scaler::fit(rows.iter().map(Vec::as_slice));
        let transformed: Vec<Vec<f64>> = rows.iter().map(|r| scaler.transform(r)).collect();
        for d in 0..2 {
            let mean: f64 = transformed.iter().map(|r| r[d]).sum::<f64>() / 3.0;
            let var: f64 = transformed.iter().map(|r| r[d].powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let rows: Vec<Vec<f64>> = vec![vec![7.0], vec![7.0], vec![7.0]];
        let scaler = Scaler::fit(rows.iter().map(Vec::as_slice));
        assert_eq!(scaler.transform(&[7.0]), vec![0.0]);
        assert_eq!(scaler.transform(&[100.0]), vec![0.0]);
    }

    #[test]
    fn single_row_fit() {
        let scaler = Scaler::fit(std::iter::once([3.0, 4.0].as_slice()));
        assert_eq!(scaler.transform(&[3.0, 4.0]), vec![0.0, 0.0]);
        assert_eq!(scaler.dim(), 2);
    }

    #[test]
    #[should_panic]
    fn empty_fit_panics() {
        let _ = Scaler::fit(std::iter::empty::<&[f64]>());
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let scaler = Scaler::fit(std::iter::once([1.0, 2.0].as_slice()));
        let _ = scaler.transform(&[1.0]);
    }
}
