//! Learning to rank: a from-scratch pairwise ranking SVM.
//!
//! §III: "We use an implementation of ranking SVM to learn a ranking
//! function between pairs of instances ... each instance consists of the
//! entity/concept along with its associated features, and the label of
//! each instance is its CTR value." The paper uses SVM-light's ranking
//! mode \[9\] / LIBLINEAR \[10\] with "both linear and the radial basis
//! function kernels with the default parameters".
//!
//! We implement the same learner directly:
//!
//! * [`train()`](train())/[`RankModel`] — Pegasos-style subgradient descent on the
//!   pairwise hinge loss `max(0, 1 − w·(xᵢ − xⱼ))` over preference pairs
//!   drawn within each query group (a document's concepts ordered by
//!   CTR), with L2 regularization — the linear ranking SVM;
//! * [`rff`] — a radial-basis-function kernel approximation via random
//!   Fourier features (Rahimi & Recht), turning the kernelized problem
//!   back into a linear one at laptop scale;
//! * [`scale`] — per-dimension standardization fitted on training data;
//! * [`cv`] — a deterministic k-fold splitter for the five-fold
//!   cross-validation protocol of §V-A.3;
//! * [`grid`] — cross-validated hyper-parameter selection over the
//!   kernel/λ/epoch grid ("test both kernels, report the best",
//!   automated).

pub mod cv;
pub mod grid;
pub mod rff;
pub mod scale;
pub mod train;

pub use cv::KFold;
pub use grid::{grid_search, Grid, GridOutcome};
pub use rff::RffMap;
pub use scale::Scaler;
pub use train::{train, KernelKind, RankGroup, RankModel, SvmConfig, TrainInstance};
