//! The pairwise ranking SVM trainer.
//!
//! Preference pairs are drawn within each group (the concepts of one
//! document window, labelled by CTR): instance `i` is preferred to `j`
//! when `label_i > label_j + min_label_gap`. The linear model minimizes
//!
//! ```text
//! (λ/2)‖w‖² + (1/|P|) Σ_{(i,j)∈P} max(0, 1 − w·(xᵢ − xⱼ))
//! ```
//!
//! with Pegasos subgradient steps (`η_t = 1/(λ t)`), which is the same
//! objective LIBLINEAR's L2-regularized ranking mode solves. The RBF
//! variant first maps instances through a [`crate::RffMap`].

use crate::rff::RffMap;
use crate::scale::Scaler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One training/evaluation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainInstance {
    pub features: Vec<f64>,
    /// The preference label (CTR in the paper).
    pub label: f64,
}

/// A query group: instances that compete within one ranking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankGroup {
    pub instances: Vec<TrainInstance>,
}

impl RankGroup {
    /// Build from `(features, label)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Vec<f64>, f64)>) -> Self {
        Self {
            instances: pairs
                .into_iter()
                .map(|(features, label)| TrainInstance { features, label })
                .collect(),
        }
    }
}

/// Which kernel to train with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelKind {
    Linear,
    /// RBF via random Fourier features of the given output dimension.
    Rbf {
        gamma: f64,
        dim: usize,
    },
}

/// Trainer hyper-parameters (the "default parameters" of §V-A.3).
#[derive(Debug, Clone)]
pub struct SvmConfig {
    pub kernel: KernelKind,
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Passes over the pair set.
    pub epochs: usize,
    /// Pair construction: require `label_i > label_j + min_label_gap`.
    pub min_label_gap: f64,
    /// Scale each pair's hinge update by its label difference
    /// (normalized to mean 1). This aligns training with the weighted
    /// error rate of Eq. 5, which punishes mistakes proportionally to
    /// the CTR difference.
    pub weight_by_gap: bool,
    /// RNG seed for pair shuffling (and the RFF map).
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            kernel: KernelKind::Linear,
            lambda: 1e-4,
            epochs: 20,
            min_label_gap: 0.0,
            weight_by_gap: true,
            seed: 42,
        }
    }
}

/// A trained ranking model: scaler (+ optional RFF map) + weight vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankModel {
    scaler: Scaler,
    rff: Option<RffMap>,
    weights: Vec<f64>,
}

impl RankModel {
    /// Score a raw (unscaled) feature vector; higher means ranked
    /// earlier.
    pub fn score(&self, features: &[f64]) -> f64 {
        let x = self.scaler.transform(features);
        match &self.rff {
            Some(map) => dot(&self.weights, &map.map(&x)),
            None => dot(&self.weights, &x),
        }
    }

    /// The learned weights (in the scaled/mapped space) — exposed for
    /// diagnostics and the framework's packed ranker.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted scaler.
    pub fn scaler(&self) -> &Scaler {
        &self.scaler
    }

    /// Is this an RBF (random-Fourier) model?
    pub fn is_rbf(&self) -> bool {
        self.rff.is_some()
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Train a ranking SVM on `groups`.
///
/// # Panics
/// Panics if no group contains at least two instances with distinct
/// labels (no preference pairs can be formed).
pub fn train(groups: &[RankGroup], config: &SvmConfig) -> RankModel {
    // Fit the scaler on all training rows.
    let all_rows = groups
        .iter()
        .flat_map(|g| g.instances.iter().map(|i| i.features.as_slice()));
    let scaler = Scaler::fit(all_rows);

    // Optional kernel map.
    let rff = match config.kernel {
        KernelKind::Linear => None,
        KernelKind::Rbf { gamma, dim } => Some(RffMap::new(config.seed, scaler.dim(), dim, gamma)),
    };
    let mapped: Vec<Vec<Vec<f64>>> = groups
        .iter()
        .map(|g| {
            g.instances
                .iter()
                .map(|i| {
                    let x = scaler.transform(&i.features);
                    match &rff {
                        Some(m) => m.map(&x),
                        None => x,
                    }
                })
                .collect()
        })
        .collect();
    let dim = rff.as_ref().map_or(scaler.dim(), RffMap::output_dim);

    // Materialize preference pairs as (group, winner, loser, weight).
    let mut pairs: Vec<(usize, usize, usize, f64)> = Vec::new();
    for (g, group) in groups.iter().enumerate() {
        let n = group.instances.len();
        for i in 0..n {
            for j in 0..n {
                if i != j
                    && group.instances[i].label > group.instances[j].label + config.min_label_gap
                {
                    let gap = group.instances[i].label - group.instances[j].label;
                    pairs.push((g, i, j, gap));
                }
            }
        }
    }
    assert!(
        !pairs.is_empty(),
        "ranking SVM needs at least one preference pair"
    );
    // Normalize pair weights to mean 1 so the learning-rate schedule is
    // insensitive to the label scale.
    if config.weight_by_gap {
        let mean_gap: f64 = pairs.iter().map(|p| p.3).sum::<f64>() / pairs.len() as f64;
        for p in &mut pairs {
            p.3 /= mean_gap.max(1e-12);
        }
    } else {
        for p in &mut pairs {
            p.3 = 1.0;
        }
    }

    // Pegasos subgradient descent with tail averaging: the returned
    // model is the average of the iterates over the second half of
    // training, which suppresses the SGD jitter that plain Pegasos
    // exhibits on noisy pair sets.
    let mut r = StdRng::seed_from_u64(config.seed ^ 0x5f3);
    let mut w = vec![0.0; dim];
    let mut w_avg = vec![0.0; dim];
    let mut avg_count = 0u64;
    let avg_from = config.epochs / 2;
    let mut t = 0usize;
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    for epoch in 0..config.epochs {
        shuffle(&mut order, &mut r);
        for &p in &order {
            t += 1;
            let (g, i, j, pair_weight) = pairs[p];
            let eta = 1.0 / (config.lambda * t as f64);
            // Shrink (L2 term): w ← (1 − η λ) w.
            let shrink = 1.0 - eta * config.lambda;
            for wd in &mut w {
                *wd *= shrink;
            }
            // Hinge subgradient on the pair difference.
            let xi = &mapped[g][i];
            let xj = &mapped[g][j];
            let margin = dot(&w, xi) - dot(&w, xj);
            if margin < 1.0 {
                let step = eta * pair_weight;
                for d in 0..dim {
                    w[d] += step * (xi[d] - xj[d]);
                }
            }
            // Pegasos projection onto the ball of radius 1/sqrt(lambda):
            // essential for stable convergence on noisy pair sets.
            let norm2: f64 = w.iter().map(|x| x * x).sum();
            let radius2 = 1.0 / config.lambda;
            if norm2 > radius2 {
                let scale = (radius2 / norm2).sqrt();
                for wd in &mut w {
                    *wd *= scale;
                }
            }
            if epoch >= avg_from {
                for d in 0..dim {
                    w_avg[d] += w[d];
                }
                avg_count += 1;
            }
        }
    }
    let weights = if avg_count > 0 {
        w_avg.into_iter().map(|x| x / avg_count as f64).collect()
    } else {
        w
    };

    RankModel {
        scaler,
        rff,
        weights,
    }
}

/// Fisher–Yates shuffle (kept local for determinism control).
fn shuffle(order: &mut [usize], r: &mut StdRng) {
    for i in (1..order.len()).rev() {
        let j = r.random_range(0..=i);
        order.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic ranking task: label = 2·x₀ − x₁ + noise.
    fn synthetic_groups(seed: u64, n_groups: usize, per_group: usize) -> Vec<RankGroup> {
        let mut r = StdRng::seed_from_u64(seed);
        (0..n_groups)
            .map(|_| {
                RankGroup::from_pairs((0..per_group).map(|_| {
                    let x0: f64 = r.random();
                    let x1: f64 = r.random();
                    let noise: f64 = (r.random::<f64>() - 0.5) * 0.1;
                    (vec![x0, x1], 2.0 * x0 - x1 + noise)
                }))
            })
            .collect()
    }

    /// Fraction of correctly ordered pairs on held-out groups.
    fn pairwise_accuracy(model: &RankModel, groups: &[RankGroup]) -> f64 {
        let mut correct = 0;
        let mut total = 0;
        for g in groups {
            for i in 0..g.instances.len() {
                for j in 0..g.instances.len() {
                    if g.instances[i].label > g.instances[j].label {
                        total += 1;
                        if model.score(&g.instances[i].features)
                            > model.score(&g.instances[j].features)
                        {
                            correct += 1;
                        }
                    }
                }
            }
        }
        correct as f64 / total.max(1) as f64
    }

    #[test]
    fn linear_model_learns_linear_ranking() {
        let train_groups = synthetic_groups(1, 60, 6);
        let test_groups = synthetic_groups(2, 20, 6);
        let model = train(&train_groups, &SvmConfig::default());
        let acc = pairwise_accuracy(&model, &test_groups);
        assert!(acc > 0.9, "pairwise accuracy {acc}");
    }

    #[test]
    fn rbf_model_learns_nonlinear_ranking() {
        // label depends on |x0 - 0.5| — not linearly separable.
        let mut r = StdRng::seed_from_u64(7);
        let make = |r: &mut StdRng, n: usize| -> Vec<RankGroup> {
            (0..n)
                .map(|_| {
                    RankGroup::from_pairs((0..8).map(|_| {
                        let x0: f64 = r.random();
                        let x1: f64 = r.random();
                        (vec![x0, x1], -(x0 - 0.5).abs())
                    }))
                })
                .collect()
        };
        let train_groups = make(&mut r, 80);
        let test_groups = make(&mut r, 20);
        let linear = train(&train_groups, &SvmConfig::default());
        let rbf = train(
            &train_groups,
            &SvmConfig {
                kernel: KernelKind::Rbf {
                    gamma: 2.0,
                    dim: 256,
                },
                epochs: 30,
                ..SvmConfig::default()
            },
        );
        let acc_linear = pairwise_accuracy(&linear, &test_groups);
        let acc_rbf = pairwise_accuracy(&rbf, &test_groups);
        assert!(
            acc_rbf > acc_linear + 0.1,
            "rbf {acc_rbf} should beat linear {acc_linear} on a nonlinear task"
        );
        assert!(acc_rbf > 0.75, "rbf accuracy {acc_rbf}");
    }

    #[test]
    fn deterministic_training() {
        let groups = synthetic_groups(3, 10, 5);
        let a = train(&groups, &SvmConfig::default());
        let b = train(&groups, &SvmConfig::default());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn min_label_gap_drops_near_ties() {
        let groups = vec![RankGroup::from_pairs(vec![
            (vec![1.0, 0.0], 0.50),
            (vec![0.0, 1.0], 0.495),
            (vec![0.1, 0.1], 0.10),
        ])];
        // With a gap of 0.1 only pairs against the 0.10 instance remain.
        let model = train(
            &groups,
            &SvmConfig {
                min_label_gap: 0.1,
                ..SvmConfig::default()
            },
        );
        // The two near-tied instances should not be strongly ordered.
        let s1 = model.score(&[1.0, 0.0]);
        let s3 = model.score(&[0.1, 0.1]);
        assert!(s1 > s3, "clear preference must be learned");
    }

    #[test]
    #[should_panic]
    fn no_pairs_panics() {
        let groups = vec![RankGroup::from_pairs(vec![
            (vec![1.0], 0.5),
            (vec![2.0], 0.5),
        ])];
        let _ = train(&groups, &SvmConfig::default());
    }

    #[test]
    fn model_accessors() {
        let groups = synthetic_groups(4, 5, 4);
        let model = train(&groups, &SvmConfig::default());
        assert_eq!(model.weights().len(), 2);
        assert_eq!(model.scaler().dim(), 2);
        assert!(!model.is_rbf());
        let rbf = train(
            &groups,
            &SvmConfig {
                kernel: KernelKind::Rbf {
                    gamma: 1.0,
                    dim: 32,
                },
                ..SvmConfig::default()
            },
        );
        assert!(rbf.is_rbf());
        assert_eq!(rbf.weights().len(), 32);
    }

    #[test]
    fn higher_label_scores_higher_on_training_data() {
        let groups = synthetic_groups(5, 40, 6);
        let model = train(&groups, &SvmConfig::default());
        let acc = pairwise_accuracy(&model, &groups);
        assert!(acc > 0.9, "training accuracy {acc}");
    }
}
