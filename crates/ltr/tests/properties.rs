//! Property-based tests for the learning-to-rank crate.

use ctxrank_ltr::{train, KFold, RankGroup, RffMap, Scaler, SvmConfig};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Standardization maps the fitted rows to (≈0 mean, ≤1+eps max
    /// |z| per constant-free dimension) and is exact on affine copies.
    #[test]
    fn scaler_centers_data(rows in prop::collection::vec(
        prop::collection::vec(-1e3f64..1e3, 3..=3), 2..30)) {
        let scaler = Scaler::fit(rows.iter().map(Vec::as_slice));
        for d in 0..3 {
            let mean: f64 = rows.iter().map(|r| scaler.transform(r)[d]).sum::<f64>()
                / rows.len() as f64;
            prop_assert!(mean.abs() < 1e-6, "dim {} mean {}", d, mean);
        }
    }

    /// K-fold always partitions the index set exactly.
    #[test]
    fn kfold_partitions(n in 2usize..200, k in 2usize..8, seed in 0u64..1000) {
        prop_assume!(k <= n);
        let kf = KFold::new(n, k, seed);
        let mut seen = HashSet::new();
        for f in 0..k {
            for &i in kf.test_indices(f) {
                prop_assert!(i < n);
                prop_assert!(seen.insert(i), "duplicate index {}", i);
            }
            let train = kf.train_indices(f);
            prop_assert_eq!(train.len() + kf.test_indices(f).len(), n);
        }
        prop_assert_eq!(seen.len(), n);
    }

    /// Fold sizes differ by at most one.
    #[test]
    fn kfold_balanced(n in 2usize..200, k in 2usize..8, seed in 0u64..1000) {
        prop_assume!(k <= n);
        let kf = KFold::new(n, k, seed);
        let sizes: Vec<usize> = (0..k).map(|f| kf.test_indices(f).len()).collect();
        let min = *sizes.iter().min().expect("nonempty");
        let max = *sizes.iter().max().expect("nonempty");
        prop_assert!(max - min <= 1);
    }

    /// The RFF map is bounded: each output coordinate is within
    /// sqrt(2/D) in absolute value, so the self-inner-product is <= 2.
    #[test]
    fn rff_bounded(seed in 0u64..500, x in prop::collection::vec(-10.0f64..10.0, 3..=3)) {
        let map = RffMap::new(seed, 3, 64, 0.5);
        let z = map.map(&x);
        let bound = (2.0f64 / 64.0).sqrt() + 1e-12;
        for v in &z {
            prop_assert!(v.abs() <= bound);
        }
        let norm: f64 = z.iter().map(|v| v * v).sum();
        prop_assert!(norm <= 2.0);
    }

    /// Training on a perfectly separable 1-D ranking always recovers the
    /// direction: higher feature ⇒ higher score.
    #[test]
    fn svm_recovers_monotone_signal(offsets in prop::collection::vec(0.0f64..5.0, 4..12),
                                    seed in 0u64..100) {
        let groups: Vec<RankGroup> = offsets
            .iter()
            .map(|o| RankGroup::from_pairs(vec![
                (vec![o + 2.0], 0.9),
                (vec![o + 1.0], 0.5),
                (vec![*o], 0.1),
            ]))
            .collect();
        let model = train(&groups, &SvmConfig { seed, ..SvmConfig::default() });
        prop_assert!(model.score(&[10.0]) > model.score(&[0.0]));
    }

    /// Scores are translation-consistent: duplicating every group leaves
    /// the learned ordering unchanged (training is deterministic given
    /// the seed, so this checks invariance to data duplication).
    #[test]
    fn svm_duplication_invariant_ordering(seed in 0u64..50) {
        let base: Vec<RankGroup> = (0..6)
            .map(|i| RankGroup::from_pairs(vec![
                (vec![i as f64 + 1.0, 0.3], 0.8),
                (vec![i as f64 * 0.5, 0.7], 0.2),
            ]))
            .collect();
        let mut doubled = base.clone();
        doubled.extend(base.clone());
        let m1 = train(&base, &SvmConfig { seed, ..SvmConfig::default() });
        let m2 = train(&doubled, &SvmConfig { seed, ..SvmConfig::default() });
        let probe_hi = [5.0, 0.3];
        let probe_lo = [0.1, 0.7];
        prop_assert_eq!(
            m1.score(&probe_hi) > m1.score(&probe_lo),
            m2.score(&probe_hi) > m2.score(&probe_lo)
        );
    }
}
