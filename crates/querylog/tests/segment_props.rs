//! Property tests for the event-sourced click log.
//!
//! Three invariants the incremental pipeline leans on:
//!
//! 1. **Codec totality** — every event round-trips through the binary
//!    record codec bit-exactly, for arbitrary (including adversarial)
//!    field values, and a clean buffer recovers fully.
//! 2. **Compaction transparency** — replaying a compacted store yields
//!    exactly the additive fold of the original events, so any additive
//!    projection sees the same totals through either form.
//! 3. **Delta-merge parity** — bootstrapping once over a full event
//!    stream produces the same packed serving state, bit-exactly, as
//!    bootstrapping empty and merging the stream in arbitrarily split
//!    incremental deltas (the framework's epoch-publish path).

use ctxrank_framework::{FrozenParts, GlobalTidTable, PackedRelevanceStore, SnapshotProjector};
use ctxrank_ltr::{train, RankGroup, SvmConfig};
use ctxrank_querylog::{
    compact_events, decode_all, decode_valid_prefix, Event, SegmentConfig, SegmentStore,
};
use proptest::prelude::*;

/// Raw material for one arbitrary event: `kind` picks the variant, the
/// rest feed its fields (the vendored proptest has no `prop_oneof`, so
/// variant selection happens in the conversion).
type RawEvent = (u64, String, u64, u64, u64);

fn raw_event_strategy() -> impl Strategy<Value = Vec<RawEvent>> {
    prop::collection::vec(
        (
            0u64..=u64::MAX,
            "[a-z ]{0,12}",
            0u64..=u64::MAX,
            0u64..=u64::MAX,
            0u64..2,
        ),
        0..40,
    )
}

fn to_event(raw: &RawEvent) -> Event {
    let (story, surface, views, clicks, kind) = raw;
    if *kind == 0 {
        Event::Click {
            story: *story,
            surface: surface.clone(),
            views: *views,
            clicks: *clicks,
        }
    } else {
        Event::Query {
            terms: surface.split_whitespace().map(str::to_string).collect(),
            freq: *views,
        }
    }
}

/// Surfaces the parity projector's base knows about.
const POOL: [&str; 4] = ["solar flares", "oil", "meteor shower", "gold price"];

/// Raw material for a bounded pool event: values small enough that no
/// counter saturates, surfaces drawn from [`POOL`].
type RawPoolEvent = (u64, usize, u64, u64, u64);

fn raw_pool_strategy(max_len: usize) -> impl Strategy<Value = Vec<RawPoolEvent>> {
    prop::collection::vec(
        (
            0u64..50,
            0usize..POOL.len(),
            30u64..5_000,
            0u64..100,
            0u64..2,
        ),
        0..max_len,
    )
}

fn to_pool_event(raw: &RawPoolEvent) -> Event {
    let (story, surface_idx, views, clicks, kind) = raw;
    let surface = POOL[*surface_idx];
    if *kind == 0 {
        Event::Click {
            story: *story,
            surface: surface.to_string(),
            views: *views,
            clicks: *clicks,
        }
    } else {
        Event::Query {
            terms: surface.split(' ').map(str::to_string).collect(),
            freq: *clicks + 1,
        }
    }
}

fn frozen() -> FrozenParts {
    let mut tids = GlobalTidTable::new();
    let kw = ctxrank_features::RelevantTerms {
        terms: vec![(ctxrank_text::stem("sunspot"), 2.0)],
    };
    let relevance = PackedRelevanceStore::build(vec![("solar flares", &kw)], &mut tids);
    let groups: Vec<RankGroup> = (0..10)
        .map(|g| {
            RankGroup::from_pairs((0..2).map(|i| {
                let mut f = vec![0.0; 10];
                f[0] = (g + i) as f64;
                (f, i as f64 * 0.01)
            }))
        })
        .collect();
    FrozenParts {
        relevance,
        tids,
        model: train(&groups, &SvmConfig::default()),
    }
}

fn base() -> Vec<(String, ctxrank_features::InterestFeatures)> {
    vec![
        (
            "solar flares".to_string(),
            ctxrank_features::InterestFeatures {
                freq_exact: 100,
                freq_phrase_contained: 150,
                concept_size: 2,
                number_of_chars: 12,
                ..Default::default()
            },
        ),
        (
            "oil".to_string(),
            ctxrank_features::InterestFeatures {
                freq_exact: 40,
                concept_size: 1,
                number_of_chars: 3,
                ..Default::default()
            },
        ),
    ]
}

proptest! {
    /// Invariant 1: encode → decode is the identity on any event list,
    /// through both the strict and the recovering decoder.
    #[test]
    fn encode_decode_roundtrip(raw in raw_event_strategy()) {
        let events: Vec<Event> = raw.iter().map(to_event).collect();
        let mut buf = Vec::new();
        for e in &events {
            e.encode_into(&mut buf);
        }
        let strict = decode_all(&buf).expect("clean buffer decodes");
        prop_assert_eq!(&strict, &events);
        let (recovered, consumed) = decode_valid_prefix(&buf);
        prop_assert_eq!(&recovered, &events);
        prop_assert_eq!(consumed, buf.len());
    }

    /// Invariant 1b: a torn tail never corrupts earlier records — for
    /// every truncation point the recovering decoder returns a prefix of
    /// the original event list.
    #[test]
    fn truncation_recovers_a_prefix(raw in raw_event_strategy(), cut_frac in 0.0f64..1.0) {
        let events: Vec<Event> = raw.iter().map(to_event).collect();
        let mut buf = Vec::new();
        for e in &events {
            e.encode_into(&mut buf);
        }
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let (recovered, consumed) = decode_valid_prefix(&buf[..cut]);
        prop_assert!(consumed <= cut);
        prop_assert!(recovered.len() <= events.len());
        prop_assert_eq!(&recovered[..], &events[..recovered.len()]);
    }

    /// Invariant 2: replay(compact(store)) == compact_events(replay(store)),
    /// and compaction is idempotent.
    #[test]
    fn compacted_replay_is_the_additive_fold(
        raw in raw_pool_strategy(60),
        segment_bytes in 64usize..2048,
    ) {
        let events: Vec<Event> = raw.iter().map(to_pool_event).collect();
        let mut store = SegmentStore::in_memory(SegmentConfig { segment_bytes });
        for e in &events {
            store.append(e).expect("in-memory append");
        }
        store.seal().expect("seal");
        let original = store.replay().expect("replay original");
        prop_assert_eq!(&original, &events);

        let folded = compact_events(&original);
        let (before, after) = store.compact().expect("compact");
        prop_assert_eq!(before, events.len() as u64);
        prop_assert_eq!(after, folded.len() as u64);
        prop_assert_eq!(&store.replay().expect("replay compacted"), &folded);
        prop_assert_eq!(store.sealed_events(), folded.len() as u64);

        // Idempotent: a second compaction changes nothing.
        let (b2, a2) = store.compact().expect("recompact");
        prop_assert_eq!(b2, a2);
        prop_assert_eq!(&store.replay().expect("replay twice-compacted"), &folded);
    }

    /// Invariant 3: bootstrap-over-everything equals bootstrap-then-
    /// incremental-deltas, bit-exactly, for every split of the stream.
    #[test]
    fn delta_merge_parity(
        raw in raw_pool_strategy(30),
        splits in prop::collection::vec(0usize..31, 0..4),
    ) {
        let events: Vec<Event> = raw.iter().map(to_pool_event).collect();

        // Path A: one projector folds the whole stream in one delta.
        let (mut one_shot, _) = SnapshotProjector::bootstrap(frozen(), base()).expect("bootstrap");
        let whole = one_shot.fold(&events);
        let snap_a = one_shot.apply(&whole).expect("apply whole");

        // Path B: the same stream in sorted split batches.
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s.min(events.len())).collect();
        cuts.push(0);
        cuts.push(events.len());
        cuts.sort_unstable();
        let (mut stepped, _) = SnapshotProjector::bootstrap(frozen(), base()).expect("bootstrap");
        let mut snap_b = None;
        for pair in cuts.windows(2) {
            let delta = stepped.fold(&events[pair[0]..pair[1]]);
            snap_b = Some(stepped.apply(&delta).expect("apply batch"));
        }
        let snap_b = snap_b.expect("at least one batch");

        // Bit-exact serving state: same quantizers, same packed rows.
        prop_assert_eq!(snap_a.interest().len(), snap_b.interest().len());
        prop_assert_eq!(snap_a.interest().quantizers(), snap_b.interest().quantizers());
        for (surface, _) in base() {
            prop_assert_eq!(
                snap_a.interest().dense(&surface),
                snap_b.interest().dense(&surface)
            );
        }
        for e in &events {
            if let Event::Click { surface, .. } = e {
                prop_assert_eq!(
                    snap_a.interest().dense(surface),
                    snap_b.interest().dense(surface)
                );
            }
        }
    }
}
