//! Property-based tests for query-log mining.

use ctxrank_querylog::{extract_units, QueryLog, SuggestionService, UnitConfig};
use proptest::prelude::*;

fn log_strategy() -> impl Strategy<Value = Vec<(Vec<String>, u64)>> {
    prop::collection::vec((prop::collection::vec("[a-d]{1,3}", 1..5), 1u64..50), 0..40)
}

proptest! {
    /// Total frequency equals the sum of added frequencies; exact
    /// frequency matches a naive aggregation.
    #[test]
    fn frequencies_match_naive(entries in log_strategy()) {
        let mut log = QueryLog::new();
        for (terms, freq) in &entries {
            log.add_terms(terms.clone(), *freq);
        }
        let expected_total: u64 = entries.iter().map(|e| e.1).sum();
        prop_assert_eq!(log.total_freq(), expected_total);

        // Naive exact counts.
        let mut naive: std::collections::HashMap<Vec<String>, u64> = std::collections::HashMap::new();
        for (terms, freq) in &entries {
            *naive.entry(terms.clone()).or_insert(0) += freq;
        }
        for (terms, freq) in &naive {
            prop_assert_eq!(log.freq_exact(terms), *freq);
        }
    }

    /// Phrase containment dominates exact frequency and term containment
    /// dominates phrase containment of longer phrases.
    #[test]
    fn containment_hierarchy(entries in log_strategy(),
                             probe in prop::collection::vec("[a-d]{1,3}", 1..4)) {
        let mut log = QueryLog::new();
        for (terms, freq) in &entries {
            log.add_terms(terms.clone(), *freq);
        }
        prop_assert!(log.freq_phrase_contained(&probe) >= log.freq_exact(&probe));
        if probe.len() == 1 {
            prop_assert_eq!(
                log.freq_phrase_contained(&probe),
                log.freq_term_contained(&probe[0])
            );
        }
    }

    /// Unit scores are always within [0, 1], and every multi-term unit's
    /// phrase actually co-occurs in the log.
    #[test]
    fn unit_invariants(entries in log_strategy()) {
        let mut log = QueryLog::new();
        for (terms, freq) in &entries {
            log.add_terms(terms.clone(), *freq);
        }
        let units = extract_units(&log, &UnitConfig::default());
        for u in units.iter() {
            prop_assert!((0.0..=1.0).contains(&u.score), "score {}", u.score);
            if u.terms.len() > 1 {
                prop_assert!(
                    log.freq_phrase_contained(&u.terms) > 0,
                    "unit {:?} never co-occurs", u.terms
                );
            }
        }
    }

    /// Suggestions never include the concept itself and respect the max.
    #[test]
    fn suggestion_contracts(entries in log_strategy(),
                            concept in prop::collection::vec("[a-d]{1,3}", 1..3),
                            max in 0usize..10) {
        let mut log = QueryLog::new();
        for (terms, freq) in &entries {
            log.add_terms(terms.clone(), *freq);
        }
        let svc = SuggestionService::new(&log);
        let sugg = svc.suggestions(&concept, max);
        prop_assert!(sugg.len() <= max);
        for s in &sugg {
            prop_assert!(s.terms != concept);
            prop_assert!(s.freq > 0);
        }
    }

    /// Trie-backed `UnitDictionary::get` agrees with a legacy
    /// String-keyed HashMap over the same units: identical hits (same
    /// unit, bit-identical score) and identical misses, for arbitrary
    /// extracted dictionaries and arbitrary probe sequences — including
    /// probes containing terms no unit uses.
    #[test]
    fn trie_get_matches_string_keyed_reference(
        entries in log_strategy(),
        probes in prop::collection::vec(
            prop::collection::vec("[a-e]{1,3}", 1..5),
            0..20,
        ),
    ) {
        let mut log = QueryLog::new();
        for (terms, freq) in &entries {
            log.add_terms(terms.clone(), *freq);
        }
        let units = extract_units(&log, &UnitConfig::default());
        // The legacy representation: surface string -> unit.
        let by_surface: std::collections::HashMap<String, &ctxrank_querylog::Unit> =
            units.iter().map(|u| (u.terms.join(" "), u)).collect();
        // Every unit is reachable through both representations.
        for u in units.iter() {
            prop_assert_eq!(units.get(&u.terms), Some(u));
        }
        for probe in &probes {
            let got = units.get(probe);
            let want = by_surface.get(&probe.join(" ")).copied();
            match (got, want) {
                (None, None) => {}
                (Some(g), Some(w)) => {
                    prop_assert_eq!(g, w);
                    prop_assert_eq!(g.score.to_bits(), w.score.to_bits());
                    prop_assert_eq!(
                        units.score(probe).to_bits(),
                        w.score.to_bits()
                    );
                }
                (g, w) => prop_assert!(false, "probe {:?}: trie {:?} vs map {:?}", probe, g, w),
            }
            if got.is_none() {
                prop_assert_eq!(units.score(probe), 0.0);
            }
        }
    }
}
