//! The Prisma query-refinement tool.
//!
//! Prisma (Anick, SIGIR 2003 — reference \[19\]) "assists users to augment
//! or replace their queries by providing feedback terms ... generated
//! using a pseudo-relevance feedback approach by considering the top 50
//! documents in a large collection, based on factors such as count and
//! position of the terms in the documents, document rank, occurrence of
//! query terms within the input phrase" (§IV-B). It returns at most twenty
//! feedback terms per query.

use ctxrank_index::{DocId, Index};
use ctxrank_text::TermId;
use std::collections::HashMap;

/// Number of top-ranked documents considered, as in the paper.
pub const PRISMA_TOP_DOCS: usize = 50;
/// Maximum feedback terms returned, as in the paper.
pub const PRISMA_MAX_TERMS: usize = 20;

/// A Prisma-style pseudo-relevance-feedback engine over a document
/// [`Index`].
///
/// Construction pre-computes per-document `(term id, tf, first position)`
/// stats and per-vocabulary stop-word flags once, so scoring a feedback
/// pool touches no strings and re-counts no documents — the same corpus
/// is probed for every mined surface.
#[derive(Debug)]
pub struct Prisma<'a> {
    index: &'a Index,
    /// Rounds of query expansion beyond the initial retrieval. Classic
    /// multi-round pseudo feedback drifts toward the broad topic of the
    /// initial results — the characteristic weakness that makes Prisma
    /// the poorest relevance-mining resource in the paper (Table IV).
    pub expansion_rounds: usize,
    /// Stop-word flag per vocabulary term, indexed by [`TermId`].
    stop: Vec<bool>,
    /// Per document: `(term, tf, first_pos)` in first-occurrence order.
    doc_stats: Vec<Vec<(TermId, u32, u32)>>,
}

impl<'a> Prisma<'a> {
    /// Wrap an index (one expansion round, as the production tool's
    /// behaviour suggests).
    pub fn new(index: &'a Index) -> Self {
        let vocab = index.interner().len();
        let mut stop = vec![false; vocab];
        for (id, term) in index.interner().iter() {
            stop[id.idx()] = ctxrank_text::is_stopword(term);
        }
        // One pass per document with a vocabulary-sized scratch table
        // (reset via the touched list, not a full sweep).
        let mut slot: Vec<u32> = vec![u32::MAX; vocab];
        let mut doc_stats = Vec::with_capacity(index.num_docs());
        for d in 0..index.num_docs() {
            let doc = index.doc(DocId(d as u32));
            let mut stats: Vec<(TermId, u32, u32)> = Vec::new();
            for (pos, &tid) in doc.term_ids.iter().enumerate() {
                let s = slot[tid.idx()];
                if s == u32::MAX {
                    slot[tid.idx()] = stats.len() as u32;
                    stats.push((tid, 1, pos as u32));
                } else {
                    stats[s as usize].1 += 1;
                }
            }
            for &(tid, _, _) in &stats {
                slot[tid.idx()] = u32::MAX;
            }
            doc_stats.push(stats);
        }
        Self {
            index,
            expansion_rounds: 1,
            stop,
            doc_stats,
        }
    }

    /// Resolve query terms against the index vocabulary (terms outside
    /// the vocabulary cannot occur in any document).
    fn query_ids(&self, query_terms: &[String]) -> Vec<TermId> {
        query_terms
            .iter()
            .filter_map(|t| self.index.term_id(t))
            .collect()
    }

    /// Feedback terms for `query_terms`: at most `max_terms` terms scored
    /// over the top `top_docs` ranked results.
    ///
    /// Per-document term score = `tf · rank_discount · position_boost`,
    /// summed over documents and multiplied by the term's idf. Query
    /// terms themselves and stop-words are excluded.
    pub fn feedback_terms(
        &self,
        query_terms: &[String],
        top_docs: usize,
        max_terms: usize,
    ) -> Vec<(String, f64)> {
        // Initial retrieval plus pseudo-feedback expansion rounds: the
        // top terms of each round are re-issued as a query and the newly
        // retrieved documents join the feedback pool.
        let query_ids = self.query_ids(query_terms);
        let mut hits = self
            .index
            .search(query_terms, top_docs / (1 + self.expansion_rounds));
        for _ in 0..self.expansion_rounds {
            // Drift mechanism: expansion picks the most *frequent* terms
            // of the current pool (tf, no idf) — the classic PRF failure
            // mode of chasing common vocabulary.
            let mut tf: HashMap<TermId, usize> = HashMap::new();
            for hit in &hits {
                for &(tid, n, _) in &self.doc_stats[hit.doc.0 as usize] {
                    if !self.stop[tid.idx()] && !query_ids.contains(&tid) {
                        *tf.entry(tid).or_insert(0) += n as usize;
                    }
                }
            }
            let mut by_tf: Vec<(&str, usize)> = tf
                .into_iter()
                .map(|(tid, n)| {
                    let term = self
                        .index
                        .interner()
                        .term(tid)
                        .expect("doc stats use index ids");
                    (term, n)
                })
                .collect();
            by_tf.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            let expansion: Vec<String> = by_tf.iter().take(5).map(|(t, _)| t.to_string()).collect();
            if expansion.is_empty() {
                break;
            }
            let mut more = self
                .index
                .search(&expansion, top_docs / (1 + self.expansion_rounds));
            more.retain(|m| hits.iter().all(|h| h.doc != m.doc));
            // The tool cannot tell drifted results from on-query ones:
            // both pools interleave in its final ranking.
            let mut merged = Vec::with_capacity(hits.len() + more.len());
            let mut a = hits.into_iter();
            let mut b = more.into_iter();
            loop {
                match (a.next(), b.next()) {
                    (None, None) => break,
                    (x, y) => {
                        merged.extend(x);
                        merged.extend(y);
                    }
                }
            }
            hits = merged;
            hits.truncate(top_docs);
        }
        self.score_docs(&hits, &query_ids, max_terms)
    }

    /// PRF scoring of one document pool, entirely in id space.
    fn score_docs(
        &self,
        hits: &[ctxrank_index::SearchHit],
        query_ids: &[TermId],
        max_terms: usize,
    ) -> Vec<(String, f64)> {
        let mut scores: HashMap<TermId, f64> = HashMap::new();

        for (rank, hit) in hits.iter().enumerate() {
            let rank_discount = 1.0 / (1.0 + (rank as f64)).ln_1p();
            let doc = self.index.doc(hit.doc);
            let n = doc.terms.len().max(1) as f64;
            for &(tid, tf, first_pos) in &self.doc_stats[hit.doc.0 as usize] {
                if self.stop[tid.idx()] || query_ids.contains(&tid) {
                    continue;
                }
                // Terms appearing earlier in the document count more.
                let position_boost = 1.0 + (1.0 - first_pos as f64 / n);
                *scores.entry(tid).or_insert(0.0) += tf as f64 * rank_discount * position_boost;
            }
        }

        // Anick's selection factors are count, position and document
        // rank — frequency-driven, with no idf damping (§IV-B). This is
        // the second reason the resource drifts toward everyday
        // vocabulary.
        let mut out: Vec<(String, f64)> = scores
            .into_iter()
            .map(|(tid, s)| {
                let term = self
                    .index
                    .interner()
                    .term(tid)
                    .expect("doc stats use index ids");
                (term.to_string(), s)
            })
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out.truncate(max_terms);
        out
    }

    /// The paper's defaults: top 50 documents, at most 20 feedback terms.
    pub fn paper_feedback(&self, query_terms: &[String]) -> Vec<(String, f64)> {
        self.feedback_terms(query_terms, PRISMA_TOP_DOCS, PRISMA_MAX_TERMS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxrank_index::IndexBuilder;

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn corpus() -> Index {
        let mut b = IndexBuilder::new();
        b.add_document("hurricane katrina devastated new orleans levees flooding");
        b.add_document("hurricane season brings flooding and levee failures");
        b.add_document("new orleans rebuilt levees after hurricane katrina flooding");
        b.add_document("stock market rallies on tech earnings");
        b.add_document("tech startup raises funding round");
        b.build()
    }

    #[test]
    fn feedback_terms_topical() {
        let idx = corpus();
        let prisma = Prisma::new(&idx);
        let fb = prisma.feedback_terms(&t("hurricane"), 50, 20);
        let terms: Vec<&str> = fb.iter().map(|(t, _)| t.as_str()).collect();
        assert!(
            terms.contains(&"levees") || terms.contains(&"flooding"),
            "{terms:?}"
        );
        // Off-topic vocabulary must not surface.
        assert!(!terms.contains(&"earnings"));
    }

    #[test]
    fn query_terms_excluded() {
        let idx = corpus();
        let prisma = Prisma::new(&idx);
        let fb = prisma.feedback_terms(&t("hurricane katrina"), 50, 20);
        assert!(fb.iter().all(|(t, _)| t != "hurricane" && t != "katrina"));
    }

    #[test]
    fn stopwords_excluded() {
        let idx = corpus();
        let prisma = Prisma::new(&idx);
        let fb = prisma.feedback_terms(&t("hurricane"), 50, 20);
        assert!(fb.iter().all(|(t, _)| !ctxrank_text::is_stopword(t)));
    }

    #[test]
    fn max_terms_respected() {
        let idx = corpus();
        let prisma = Prisma::new(&idx);
        assert!(prisma.feedback_terms(&t("hurricane"), 50, 3).len() <= 3);
        assert_eq!(PRISMA_MAX_TERMS, 20);
        assert_eq!(PRISMA_TOP_DOCS, 50);
    }

    #[test]
    fn scores_sorted_descending() {
        let idx = corpus();
        let prisma = Prisma::new(&idx);
        let fb = prisma.paper_feedback(&t("hurricane"));
        for w in fb.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn unknown_query_no_feedback() {
        let idx = corpus();
        let prisma = Prisma::new(&idx);
        assert!(prisma.paper_feedback(&t("zzz")).is_empty());
    }
}
