//! The append-only segment store — durable home of the click stream.
//!
//! Layout of a store directory:
//!
//! ```text
//! store/
//!   manifest.txt        # the live sealed-segment list; rename = commit
//!   segment-000000.seg  # immutable, checksummed records (events.rs)
//!   segment-000001.seg
//!   wal.open            # the unsealed tail, rewritten on sync()
//! ```
//!
//! Durability contract, in the PR 5 commit-point idiom:
//!
//! * **Sealed segments are immutable and durable.** `seal()` writes the
//!   active buffer to `segment-N.seg.tmp`, renames it to its final
//!   name, then rewrites `manifest.txt` through its own temp+rename.
//!   The *manifest* rename is the commit point: a crash anywhere before
//!   it leaves the previous manifest (and therefore the previous live
//!   set) fully intact.
//! * **The unsealed tail is at-risk by design.** `sync()` rewrites
//!   `wal.open` in place — deliberately *not* atomic, because that is
//!   how an append-mode log behaves under a crash. Recovery decodes the
//!   longest valid record prefix ([`crate::events::decode_valid_prefix`])
//!   and truncates the torn tail; records before the tear are never
//!   affected, because each carries its own length and checksum.
//! * **Compaction is a manifest swap.** Folded replacement segments are
//!   written under *new* sequence numbers first; only then does one
//!   manifest write retire the old set. A crash mid-compaction leaves
//!   the old manifest pointing at the old (complete) segments.
//!
//! Corruption in a *sealed* segment — checksum mismatch, bad length,
//! record-count drift from the manifest — is never truncated away; it
//! surfaces as a typed [`SegmentError::Corrupt`], because immutable
//! bytes that changed mean the storage lied, not that we crashed.

use crate::events::{decode_all, decode_valid_prefix, Event};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Filesystem seam for the segment store. Deliberately identical in
/// shape to the framework's `PersistFs`, so the fault-injection
/// harness can drive this store through the same `FaultyFs` machinery
/// with a two-line adapter.
pub trait SegmentFs: Send + Sync {
    /// Open `path` for reading.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read>>;
    /// Create (truncate) `path` for writing.
    fn create_write(&self, path: &Path) -> io::Result<Box<dyn Write>>;
    /// Atomically move `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Create `path` and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdSegmentFs;

impl SegmentFs for StdSegmentFs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read>> {
        Ok(Box::new(std::fs::File::open(path)?))
    }

    fn create_write(&self, path: &Path) -> io::Result<Box<dyn Write>> {
        Ok(Box::new(std::fs::File::create(path)?))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// Writer that commits into the shared map on drop (mirrors the close
/// semantics of a real file).
struct MemWrite {
    files: Arc<Mutex<HashMap<PathBuf, Vec<u8>>>>,
    path: PathBuf,
    buf: Vec<u8>,
}

impl Write for MemWrite {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for MemWrite {
    fn drop(&mut self) {
        self.files
            .lock()
            .expect("mem fs lock")
            .insert(self.path.clone(), std::mem::take(&mut self.buf));
    }
}

/// An in-memory filesystem: the stage pipeline and unit tests run the
/// exact production store logic without touching disk. Cloning shares
/// the file map, so a test can reopen "the same disk" after a
/// simulated crash.
#[derive(Debug, Default, Clone)]
pub struct SharedMemFs {
    files: Arc<Mutex<HashMap<PathBuf, Vec<u8>>>>,
}

impl SharedMemFs {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently stored at `path` (tests and diagnostics).
    pub fn bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.files.lock().expect("mem fs lock").get(path).cloned()
    }

    /// Overwrite `path` directly (tests: simulate external corruption).
    pub fn put(&self, path: &Path, bytes: Vec<u8>) {
        self.files
            .lock()
            .expect("mem fs lock")
            .insert(path.to_path_buf(), bytes);
    }
}

impl SegmentFs for SharedMemFs {
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn Read>> {
        let files = self.files.lock().expect("mem fs lock");
        match files.get(path) {
            Some(bytes) => Ok(Box::new(io::Cursor::new(bytes.clone()))),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn create_write(&self, path: &Path) -> io::Result<Box<dyn Write>> {
        Ok(Box::new(MemWrite {
            files: Arc::clone(&self.files),
            path: path.to_path_buf(),
            buf: Vec::new(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.files.lock().expect("mem fs lock");
        match files.remove(from) {
            Some(bytes) => {
                files.insert(to.to_path_buf(), bytes);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }
}

/// Why the store failed.
#[derive(Debug)]
pub enum SegmentError {
    /// The filesystem failed.
    Io(io::Error),
    /// Durable bytes did not validate: `file` names the artifact,
    /// `detail` says what was wrong.
    Corrupt { file: String, detail: String },
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment store i/o: {e}"),
            SegmentError::Corrupt { file, detail } => {
                write!(f, "segment store corruption in {file}: {detail}")
            }
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Io(e) => Some(e),
            SegmentError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for SegmentError {
    fn from(e: io::Error) -> Self {
        SegmentError::Io(e)
    }
}

fn corrupt(file: impl Into<String>, detail: impl std::fmt::Display) -> SegmentError {
    SegmentError::Corrupt {
        file: file.into(),
        detail: detail.to_string(),
    }
}

/// Store tuning.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// Seal the active segment once its encoded size reaches this many
    /// bytes. Fixed-size segments keep replay and compaction costs
    /// predictable at log scale.
    pub segment_bytes: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 1 << 20, // 1 MiB ≈ 20–30k click events
        }
    }
}

/// A sealed segment's manifest entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealedMeta {
    /// Sequence number (file name `segment-<seq>.seg`).
    pub seq: u64,
    /// Exact file length in bytes.
    pub bytes: u64,
    /// Record count.
    pub events: u64,
}

const MANIFEST: &str = "manifest.txt";
const MANIFEST_TMP: &str = "manifest.txt.tmp";
const WAL: &str = "wal.open";
const MANIFEST_MAGIC: &str = "ctxrank-seglog v1";

fn segment_name(seq: u64) -> String {
    format!("segment-{seq:06}.seg")
}

/// The append-only event log. One writer, any number of replaying
/// readers-by-path; all I/O goes through the [`SegmentFs`] seam.
pub struct SegmentStore {
    fs: Arc<dyn SegmentFs>,
    dir: PathBuf,
    config: SegmentConfig,
    /// Live sealed segments, ascending seq.
    sealed: Vec<SealedMeta>,
    /// Next sequence number to seal under.
    next_seq: u64,
    /// Encoded records appended but not yet sealed.
    active: Vec<u8>,
    active_events: u64,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("dir", &self.dir)
            .field("sealed", &self.sealed.len())
            .field("active_bytes", &self.active.len())
            .finish_non_exhaustive()
    }
}

impl SegmentStore {
    /// Open (or create) the store at `dir` on the real filesystem.
    pub fn open_std(dir: impl Into<PathBuf>, config: SegmentConfig) -> Result<Self, SegmentError> {
        Self::open(Arc::new(StdSegmentFs), dir, config)
    }

    /// A store on a private in-memory filesystem (the stage pipeline's
    /// mode: production logic, no disk).
    pub fn in_memory(config: SegmentConfig) -> Self {
        Self::open(Arc::new(SharedMemFs::new()), "mem-store", config)
            .expect("in-memory store cannot fail to open")
    }

    /// Open (or create) the store at `dir` through `fs`, recovering the
    /// unsealed tail: the WAL's longest valid record prefix becomes the
    /// active buffer, and anything after a torn record is discarded.
    pub fn open(
        fs: Arc<dyn SegmentFs>,
        dir: impl Into<PathBuf>,
        config: SegmentConfig,
    ) -> Result<Self, SegmentError> {
        let dir = dir.into();
        fs.create_dir_all(&dir)?;
        let (sealed, next_seq) = match read_optional(fs.as_ref(), &dir.join(MANIFEST))? {
            Some(bytes) => parse_manifest(&bytes)?,
            None => (Vec::new(), 0),
        };
        let (active, active_events) = match read_optional(fs.as_ref(), &dir.join(WAL))? {
            Some(bytes) => {
                let (events, valid_len) = decode_valid_prefix(&bytes);
                (bytes[..valid_len].to_vec(), events.len() as u64)
            }
            None => (Vec::new(), 0),
        };
        Ok(Self {
            fs,
            dir,
            config,
            sealed,
            next_seq,
            active,
            active_events,
        })
    }

    /// Append one event to the active segment. Seals automatically when
    /// the segment reaches its configured size; returns the sealed
    /// segment's manifest entry when that happens.
    pub fn append(&mut self, event: &Event) -> Result<Option<SealedMeta>, SegmentError> {
        event.encode_into(&mut self.active);
        self.active_events += 1;
        if self.active.len() >= self.config.segment_bytes {
            self.seal()
        } else {
            Ok(None)
        }
    }

    /// Make the unsealed tail durable. Rewrites the WAL in place —
    /// *not* atomic by design (see module docs); a crash mid-write
    /// loses at most the tail records past the tear, never sealed data.
    pub fn sync(&mut self) -> Result<(), SegmentError> {
        let mut w = self.fs.create_write(&self.dir.join(WAL))?;
        w.write_all(&self.active)?;
        w.flush()?;
        Ok(())
    }

    /// Seal the active segment: write it under the next sequence
    /// number, commit it into the manifest, clear the WAL. No-op on an
    /// empty active buffer.
    pub fn seal(&mut self) -> Result<Option<SealedMeta>, SegmentError> {
        if self.active.is_empty() {
            return Ok(None);
        }
        let meta = SealedMeta {
            seq: self.next_seq,
            bytes: self.active.len() as u64,
            events: self.active_events,
        };
        self.write_segment_file(meta.seq, &self.active)?;
        self.sealed.push(meta);
        self.next_seq += 1;
        if let Err(e) = self.write_manifest() {
            // The manifest (the commit point) was never replaced: undo
            // the in-memory registration so state matches disk.
            self.sealed.pop();
            self.next_seq -= 1;
            return Err(e);
        }
        self.active.clear();
        self.active_events = 0;
        // Best-effort WAL truncation; the sealed records would merely be
        // re-recovered (and re-deduplicated by seal ordering) otherwise.
        let _ = self.sync();
        Ok(Some(meta))
    }

    /// Replay every live sealed segment, in order. Fully validating:
    /// checksum or count drift in immutable bytes is a typed error.
    pub fn replay(&self) -> Result<Vec<Event>, SegmentError> {
        self.replay_from(0)
    }

    /// Replay live sealed segments with `seq >= from_seq` — the delta
    /// projection's read path ("everything sealed since the segment I
    /// last folded").
    pub fn replay_from(&self, from_seq: u64) -> Result<Vec<Event>, SegmentError> {
        let mut events = Vec::new();
        for meta in self.sealed.iter().filter(|m| m.seq >= from_seq) {
            events.extend(self.read_segment(meta)?);
        }
        Ok(events)
    }

    /// Decode one sealed segment, validating it against its manifest
    /// entry.
    fn read_segment(&self, meta: &SealedMeta) -> Result<Vec<Event>, SegmentError> {
        let name = segment_name(meta.seq);
        let mut bytes = Vec::new();
        self.fs
            .open_read(&self.dir.join(&name))?
            .read_to_end(&mut bytes)?;
        if bytes.len() as u64 != meta.bytes {
            return Err(corrupt(
                &name,
                format!("length {} != manifest {}", bytes.len(), meta.bytes),
            ));
        }
        let events = decode_all(&bytes).map_err(|e| corrupt(&name, e))?;
        if events.len() as u64 != meta.events {
            return Err(corrupt(
                &name,
                format!("{} records != manifest {}", events.len(), meta.events),
            ));
        }
        Ok(events)
    }

    /// Fold the live sealed segments into their additive summary and
    /// replace them with freshly written segments holding the folded
    /// events. The swap is one manifest write: a crash at any earlier
    /// point leaves the previous live set intact. Returns
    /// `(events_before, events_after)`.
    pub fn compact(&mut self) -> Result<(u64, u64), SegmentError> {
        let before: u64 = self.sealed.iter().map(|m| m.events).sum();
        let folded = compact_events(&self.replay()?);
        let after = folded.len() as u64;

        // Write the replacement segments under fresh sequence numbers,
        // respecting the configured segment size.
        let mut new_sealed: Vec<SealedMeta> = Vec::new();
        let mut seq = self.next_seq;
        let mut buf: Vec<u8> = Vec::new();
        let mut buf_events = 0u64;
        let flush = |store: &Self,
                     buf: &mut Vec<u8>,
                     buf_events: &mut u64,
                     seq: &mut u64|
         -> Result<Option<SealedMeta>, SegmentError> {
            if buf.is_empty() {
                return Ok(None);
            }
            let meta = SealedMeta {
                seq: *seq,
                bytes: buf.len() as u64,
                events: *buf_events,
            };
            store.write_segment_file(meta.seq, buf)?;
            *seq += 1;
            buf.clear();
            *buf_events = 0;
            Ok(Some(meta))
        };
        for e in &folded {
            e.encode_into(&mut buf);
            buf_events += 1;
            if buf.len() >= self.config.segment_bytes {
                if let Some(m) = flush(self, &mut buf, &mut buf_events, &mut seq)? {
                    new_sealed.push(m);
                }
            }
        }
        if let Some(m) = flush(self, &mut buf, &mut buf_events, &mut seq)? {
            new_sealed.push(m);
        }

        // The commit point: one manifest write retires the old set.
        let old_sealed = std::mem::replace(&mut self.sealed, new_sealed);
        let old_next = std::mem::replace(&mut self.next_seq, seq);
        if let Err(e) = self.write_manifest() {
            self.sealed = old_sealed;
            self.next_seq = old_next;
            return Err(e);
        }
        Ok((before, after))
    }

    /// Live sealed segments, ascending seq.
    pub fn sealed(&self) -> &[SealedMeta] {
        &self.sealed
    }

    /// Total bytes across live sealed segments (the
    /// `ctxrank_segment_bytes` gauge).
    pub fn sealed_bytes(&self) -> u64 {
        self.sealed.iter().map(|m| m.bytes).sum()
    }

    /// Total records across live sealed segments.
    pub fn sealed_events(&self) -> u64 {
        self.sealed.iter().map(|m| m.events).sum()
    }

    /// The sequence number the next seal will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Encoded bytes waiting in the active (unsealed) segment.
    pub fn active_bytes(&self) -> usize {
        self.active.len()
    }

    /// Records waiting in the active (unsealed) segment.
    pub fn active_events(&self) -> u64 {
        self.active_events
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn write_segment_file(&self, seq: u64, bytes: &[u8]) -> Result<(), SegmentError> {
        let final_path = self.dir.join(segment_name(seq));
        let tmp_path = self.dir.join(format!("{}.tmp", segment_name(seq)));
        {
            let mut w = self.fs.create_write(&tmp_path)?;
            w.write_all(bytes)?;
            w.flush()?;
        }
        self.fs.rename(&tmp_path, &final_path)?;
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), SegmentError> {
        let mut text = String::new();
        text.push_str(MANIFEST_MAGIC);
        text.push('\n');
        for m in &self.sealed {
            text.push_str(&format!("seg {} {} {}\n", m.seq, m.bytes, m.events));
        }
        text.push_str(&format!("next {}\n", self.next_seq));
        let tmp = self.dir.join(MANIFEST_TMP);
        {
            let mut w = self.fs.create_write(&tmp)?;
            w.write_all(text.as_bytes())?;
            w.flush()?;
        }
        self.fs.rename(&tmp, &self.dir.join(MANIFEST))?;
        Ok(())
    }
}

fn read_optional(fs: &dyn SegmentFs, path: &Path) -> Result<Option<Vec<u8>>, SegmentError> {
    match fs.open_read(path) {
        Ok(mut r) => {
            let mut bytes = Vec::new();
            r.read_to_end(&mut bytes)?;
            Ok(Some(bytes))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(SegmentError::Io(e)),
    }
}

fn parse_manifest(bytes: &[u8]) -> Result<(Vec<SealedMeta>, u64), SegmentError> {
    let text = std::str::from_utf8(bytes).map_err(|_| corrupt(MANIFEST, "not UTF-8"))?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(corrupt(MANIFEST, "bad magic line"));
    }
    let mut sealed: Vec<SealedMeta> = Vec::new();
    let mut next_seq: Option<u64> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(' ').collect();
        match fields.as_slice() {
            ["seg", seq, bytes, events] => {
                let parse = |s: &str, what: &str| {
                    s.parse::<u64>()
                        .map_err(|_| corrupt(MANIFEST, format!("bad {what}: {s:?}")))
                };
                let meta = SealedMeta {
                    seq: parse(seq, "seq")?,
                    bytes: parse(bytes, "bytes")?,
                    events: parse(events, "events")?,
                };
                if let Some(last) = sealed.last() {
                    if meta.seq <= last.seq {
                        return Err(corrupt(MANIFEST, "segment sequence not ascending"));
                    }
                }
                sealed.push(meta);
            }
            ["next", n] => {
                next_seq = Some(
                    n.parse::<u64>()
                        .map_err(|_| corrupt(MANIFEST, format!("bad next seq: {n:?}")))?,
                );
            }
            _ => return Err(corrupt(MANIFEST, format!("unrecognized line {line:?}"))),
        }
    }
    let next_seq = next_seq.ok_or_else(|| corrupt(MANIFEST, "missing next-seq line"))?;
    if sealed.last().is_some_and(|m| m.seq >= next_seq) {
        return Err(corrupt(MANIFEST, "next seq not past the sealed set"));
    }
    Ok((sealed, next_seq))
}

/// The additive fold compaction applies: click events merge by
/// `(story, surface)` (views and clicks sum), rank-annotated clicks by
/// `(story, surface, rank)` (rank is part of the evidence — collapsing
/// it would erase the position signal debiasing needs), query events
/// merge by their term list (frequencies sum). Keys keep
/// first-appearance order, so compaction is deterministic. Any
/// projection that folds events additively — CTR counts, frequency
/// features, propensity cells — sees the same totals through the
/// compacted log as through the original.
pub fn compact_events(events: &[Event]) -> Vec<Event> {
    // Index into `out` per key, preserving first-seen order.
    let mut click_at: HashMap<(u64, String), usize> = HashMap::new();
    let mut ranked_at: HashMap<(u64, String, u32), usize> = HashMap::new();
    let mut query_at: HashMap<Vec<String>, usize> = HashMap::new();
    let mut out: Vec<Event> = Vec::new();
    for e in events {
        match e {
            Event::Click {
                story,
                surface,
                views,
                clicks,
            } => match click_at.get(&(*story, surface.clone())) {
                Some(&i) => {
                    if let Event::Click {
                        views: v,
                        clicks: c,
                        ..
                    } = &mut out[i]
                    {
                        // Decoded values are untrusted: saturate rather
                        // than overflow on adversarial counts.
                        *v = v.saturating_add(*views);
                        *c = c.saturating_add(*clicks);
                    }
                }
                None => {
                    click_at.insert((*story, surface.clone()), out.len());
                    out.push(e.clone());
                }
            },
            Event::RankedClick {
                story,
                surface,
                rank,
                views,
                clicks,
            } => match ranked_at.get(&(*story, surface.clone(), *rank)) {
                Some(&i) => {
                    if let Event::RankedClick {
                        views: v,
                        clicks: c,
                        ..
                    } = &mut out[i]
                    {
                        *v = v.saturating_add(*views);
                        *c = c.saturating_add(*clicks);
                    }
                }
                None => {
                    ranked_at.insert((*story, surface.clone(), *rank), out.len());
                    out.push(e.clone());
                }
            },
            Event::Query { terms, freq } => match query_at.get(terms) {
                Some(&i) => {
                    if let Event::Query { freq: f, .. } = &mut out[i] {
                        *f = f.saturating_add(*freq);
                    }
                }
                None => {
                    query_at.insert(terms.clone(), out.len());
                    out.push(e.clone());
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn click(story: u64, surface: &str, views: u64, clicks: u64) -> Event {
        Event::Click {
            story,
            surface: surface.into(),
            views,
            clicks,
        }
    }

    fn query(terms: &[&str], freq: u64) -> Event {
        Event::Query {
            terms: terms.iter().map(|s| s.to_string()).collect(),
            freq,
        }
    }

    fn tiny_config() -> SegmentConfig {
        SegmentConfig { segment_bytes: 128 }
    }

    #[test]
    fn append_seal_replay_roundtrip() {
        let mut store = SegmentStore::in_memory(SegmentConfig::default());
        let events = vec![
            query(&["solar", "flares"], 3),
            click(1, "solar flares", 100, 7),
            click(2, "oil prices", 50, 2),
        ];
        for e in &events {
            store.append(e).expect("append");
        }
        assert_eq!(store.active_events(), 3);
        let meta = store.seal().expect("seal").expect("nonempty");
        assert_eq!(meta.events, 3);
        assert_eq!(store.active_events(), 0);
        assert_eq!(store.replay().expect("replay"), events);
        assert_eq!(store.sealed_events(), 3);
        assert_eq!(store.sealed_bytes(), meta.bytes);
    }

    #[test]
    fn auto_seal_at_segment_size() {
        let mut store = SegmentStore::in_memory(tiny_config());
        let mut sealed = 0;
        for i in 0..100 {
            if store
                .append(&click(i, "s", 10, 1))
                .expect("append")
                .is_some()
            {
                sealed += 1;
            }
        }
        assert!(sealed > 1, "128-byte segments must seal many times");
        assert_eq!(store.sealed().len(), sealed);
        assert_eq!(
            store.sealed_events() + store.active_events(),
            100,
            "no event lost across seals"
        );
    }

    #[test]
    fn reopen_recovers_sealed_and_synced_tail() {
        let fs = Arc::new(SharedMemFs::new());
        let mut store =
            SegmentStore::open(fs.clone(), "store", SegmentConfig::default()).expect("open");
        store.append(&click(1, "a", 10, 1)).expect("append");
        store.seal().expect("seal");
        store.append(&click(2, "b", 20, 2)).expect("append");
        store.sync().expect("sync");
        drop(store);

        let store = SegmentStore::open(fs, "store", SegmentConfig::default()).expect("reopen");
        assert_eq!(store.replay().expect("replay"), vec![click(1, "a", 10, 1)]);
        assert_eq!(store.active_events(), 1, "synced tail recovered");
        assert_eq!(store.next_seq(), 1);
    }

    #[test]
    fn torn_wal_tail_truncates_to_last_valid_record() {
        let fs = Arc::new(SharedMemFs::new());
        let mut store =
            SegmentStore::open(fs.clone(), "store", SegmentConfig::default()).expect("open");
        let kept = [click(1, "kept one", 10, 1), click(2, "kept two", 20, 2)];
        for e in &kept {
            store.append(e).expect("append");
        }
        store.sync().expect("sync");
        drop(store);

        // Tear the WAL mid-record, as a crash during sync would.
        let wal = Path::new("store").join(WAL);
        let full = fs.bytes(&wal).expect("wal exists");
        let torn_event = click(3, "torn", 30, 3).encode();
        for cut in 1..torn_event.len() {
            let mut torn = full.clone();
            torn.extend_from_slice(&torn_event[..cut]);
            fs.put(&wal, torn);
            let store =
                SegmentStore::open(fs.clone(), "store", SegmentConfig::default()).expect("reopen");
            assert_eq!(store.active_events(), 2, "cut at {cut}");
        }
    }

    #[test]
    fn sealed_corruption_is_a_typed_error_not_truncation() {
        let fs = Arc::new(SharedMemFs::new());
        let mut store =
            SegmentStore::open(fs.clone(), "store", SegmentConfig::default()).expect("open");
        store.append(&click(1, "a", 10, 1)).expect("append");
        store.seal().expect("seal");

        let seg = Path::new("store").join(segment_name(0));
        let mut bytes = fs.bytes(&seg).expect("segment exists");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs.put(&seg, bytes);

        let err = store.replay().expect_err("flip detected");
        match err {
            SegmentError::Corrupt { file, detail } => {
                assert!(file.contains("segment-000000"), "{file}");
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn replay_from_skips_already_folded_segments() {
        let mut store = SegmentStore::in_memory(SegmentConfig::default());
        store.append(&click(1, "a", 10, 1)).expect("append");
        store.seal().expect("seal");
        store.append(&click(2, "b", 20, 2)).expect("append");
        store.seal().expect("seal");
        assert_eq!(
            store.replay_from(1).expect("replay"),
            vec![click(2, "b", 20, 2)]
        );
        assert!(store.replay_from(2).expect("replay").is_empty());
    }

    #[test]
    fn compaction_preserves_additive_totals_and_shrinks() {
        let mut store = SegmentStore::in_memory(tiny_config());
        for round in 0..20 {
            store.append(&click(1, "hot", 100, round)).expect("append");
            store.append(&query(&["hot"], 2)).expect("append");
        }
        store.seal().expect("seal");
        let before = store.replay().expect("replay");
        let (n_before, n_after) = store.compact().expect("compact");
        assert_eq!(n_before, 40);
        assert_eq!(n_after, 2);
        let after = store.replay().expect("replay");
        assert_eq!(after.len(), 2);
        assert_eq!(compact_events(&before), after);
        assert_eq!(
            after[0],
            click(1, "hot", 2000, (0..20).sum()),
            "click views/clicks fold additively"
        );
        assert_eq!(after[1], query(&["hot"], 40));
        // The store stays usable: new appends seal after the compacted
        // sequence range.
        store.append(&click(9, "new", 5, 1)).expect("append");
        store.seal().expect("seal");
        assert!(store
            .replay()
            .expect("replay")
            .contains(&click(9, "new", 5, 1)));
    }

    #[test]
    fn manifest_defects_are_typed_corruption() {
        let cases: Vec<Vec<u8>> = vec![
            b"wrong magic\nnext 0\n".to_vec(),
            format!("{MANIFEST_MAGIC}\nseg 0 nonsense 1\nnext 1\n").into_bytes(),
            format!("{MANIFEST_MAGIC}\nseg 1 10 1\nseg 0 10 1\nnext 2\n").into_bytes(),
            format!("{MANIFEST_MAGIC}\nseg 3 10 1\nnext 2\n").into_bytes(),
            format!("{MANIFEST_MAGIC}\nseg 0 10 1\n").into_bytes(),
            vec![0xFF, 0xFE],
        ];
        for bytes in cases {
            let fs = Arc::new(SharedMemFs::new());
            fs.put(&Path::new("store").join(MANIFEST), bytes.clone());
            let err = SegmentStore::open(fs, "store", SegmentConfig::default())
                .expect_err("manifest must be rejected");
            assert!(
                matches!(err, SegmentError::Corrupt { .. }),
                "{bytes:?} → {err}"
            );
        }
    }

    #[test]
    fn std_fs_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "ctxrank-seg-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = SegmentStore::open_std(&dir, SegmentConfig::default()).expect("open");
        store.append(&click(7, "disk", 70, 7)).expect("append");
        store.seal().expect("seal");
        drop(store);
        let store = SegmentStore::open_std(&dir, SegmentConfig::default()).expect("reopen");
        assert_eq!(
            store.replay().expect("replay"),
            vec![click(7, "disk", 70, 7)]
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
