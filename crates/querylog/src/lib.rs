//! Query-log mining substrate.
//!
//! Contextual Shortcuts detects *concepts* — abstract entities beyond the
//! editorial dictionaries — "using data from search engine query logs"
//! (§II-A). This crate implements everything the paper mines from those
//! logs:
//!
//! * [`QueryLog`] — the log itself, with exact-match and
//!   phrase-containment frequency counters (features 1–2 of Table I),
//! * [`units`] — the unit-extraction algorithm of Parikh & Kapur
//!   (references \[7\], \[8\]): iterative merging of frequently co-occurring
//!   terms validated by pointwise mutual information (Eq. 1 of the paper),
//! * [`suggest`] — the related-query suggestion service (§IV-B: up to 300
//!   suggestions with their query frequencies),
//! * [`prisma`] — the Prisma query-refinement tool (Anick, SIGIR 2003,
//!   reference \[19\]): pseudo-relevance feedback terms from the top-50
//!   ranked documents, at most 20 returned.
//!
//! Beyond the paper's batch world, the crate also owns the *streaming*
//! form of the log: [`events`] defines the click-stream [`Event`] model
//! and its checksummed record codec, and [`segment`] the append-only
//! [`SegmentStore`] those records live in (crash-safe seals, torn-tail
//! recovery, additive compaction). Projections over sealed segments —
//! delta snapshots, incremental publishes — live in
//! `ctxrank-framework`.

pub mod events;
pub mod log;
pub mod prisma;
pub mod segment;
pub mod suggest;
pub mod units;

pub use events::{decode_all, decode_valid_prefix, DecodeError, Event};
pub use log::{LogError, LogQuery, QueryLog};
pub use prisma::Prisma;
pub use segment::{
    compact_events, SealedMeta, SegmentConfig, SegmentError, SegmentFs, SegmentStore, SharedMemFs,
    StdSegmentFs,
};
pub use suggest::SuggestionService;
pub use units::{extract_units, Unit, UnitConfig, UnitDictionary};
