//! Related query suggestions.
//!
//! §IV-B: "we submit the concept ci to this service and obtain up to 300
//! suggestions. We also obtain the query frequencies of the suggestions."
//! The production service mines suggestion candidates from query-log
//! co-occurrence; we implement the same interface: given a concept, return
//! the most frequent distinct queries that share at least one
//! (non-stop-word) term with it, excluding the concept itself.

use crate::log::{contains_phrase, QueryLog};
use ctxrank_text::TermId;
use std::collections::HashMap;

/// Maximum suggestions returned, as in the paper.
pub const MAX_SUGGESTIONS: usize = 300;

/// A related-query suggestion service over a [`QueryLog`].
#[derive(Debug)]
pub struct SuggestionService<'a> {
    log: &'a QueryLog,
    /// term id -> indices of distinct queries containing it.
    by_term: HashMap<TermId, Vec<usize>>,
}

/// One suggestion: the query terms and its submission frequency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    pub terms: Vec<String>,
    pub freq: u64,
}

impl<'a> SuggestionService<'a> {
    /// Build the term-to-query index for `log`, keyed by the log's
    /// interned term ids.
    pub fn new(log: &'a QueryLog) -> Self {
        let mut by_term: HashMap<TermId, Vec<usize>> = HashMap::new();
        for (i, q) in log.queries().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for (t, &id) in q.terms.iter().zip(log.query_ids(i)) {
                if !ctxrank_text::is_stopword(t) && seen.insert(id) {
                    by_term.entry(id).or_default().push(i);
                }
            }
        }
        Self { log, by_term }
    }

    /// Up to `max` suggestions related to `concept_terms`, most strongly
    /// related first. Relatedness is the number of shared non-stop-word
    /// terms, ties broken by query frequency then lexicographically.
    pub fn suggestions(&self, concept_terms: &[String], max: usize) -> Vec<Suggestion> {
        let queries: Vec<&crate::log::LogQuery> = self.log.queries().collect();
        let mut overlap: HashMap<usize, usize> = HashMap::new();
        for t in concept_terms {
            let Some(id) = self.log.interner().get(t) else {
                continue;
            };
            if let Some(idxs) = self.by_term.get(&id) {
                for &i in idxs {
                    *overlap.entry(i).or_insert(0) += 1;
                }
            }
        }
        let mut candidates: Vec<(usize, usize)> = overlap
            .into_iter()
            // Exclude the concept itself (exact term-sequence match).
            .filter(|&(i, _)| queries[i].terms != concept_terms)
            .collect();
        candidates.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| queries[b.0].freq.cmp(&queries[a.0].freq))
                .then_with(|| queries[a.0].terms.cmp(&queries[b.0].terms))
        });
        candidates
            .into_iter()
            .take(max)
            .map(|(i, _)| Suggestion {
                terms: queries[i].terms.clone(),
                freq: queries[i].freq,
            })
            .collect()
    }

    /// The paper's default: up to [`MAX_SUGGESTIONS`] suggestions.
    pub fn paper_suggestions(&self, concept_terms: &[String]) -> Vec<Suggestion> {
        self.suggestions(concept_terms, MAX_SUGGESTIONS)
    }

    /// Suggestions that contain the whole concept as a phrase — a
    /// stricter notion used in tests and diagnostics.
    pub fn phrase_suggestions(&self, concept_terms: &[String], max: usize) -> Vec<Suggestion> {
        self.suggestions(concept_terms, usize::MAX)
            .into_iter()
            .filter(|s| contains_phrase(&s.terms, concept_terms))
            .take(max)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn log() -> QueryLog {
        let mut log = QueryLog::new();
        log.add("global warming", 100);
        log.add("global warming effects", 60);
        log.add("global warming hoax", 30);
        log.add("warming oceans", 20);
        log.add("global trade", 15);
        log.add("celebrity gossip", 500);
        log
    }

    #[test]
    fn related_queries_ranked_by_overlap() {
        let l = log();
        let svc = SuggestionService::new(&l);
        let sugg = svc.suggestions(&t("global warming"), 10);
        // Both-term matches first.
        assert_eq!(sugg[0].terms, t("global warming effects"));
        assert_eq!(sugg[1].terms, t("global warming hoax"));
        // Unrelated query never appears.
        assert!(sugg.iter().all(|s| s.terms != t("celebrity gossip")));
    }

    #[test]
    fn concept_itself_excluded() {
        let l = log();
        let svc = SuggestionService::new(&l);
        let sugg = svc.suggestions(&t("global warming"), 10);
        assert!(sugg.iter().all(|s| s.terms != t("global warming")));
    }

    #[test]
    fn frequencies_attached() {
        let l = log();
        let svc = SuggestionService::new(&l);
        let sugg = svc.suggestions(&t("global warming"), 10);
        assert_eq!(sugg[0].freq, 60);
    }

    #[test]
    fn max_respected() {
        let l = log();
        let svc = SuggestionService::new(&l);
        assert!(svc.suggestions(&t("global"), 2).len() <= 2);
    }

    #[test]
    fn unknown_concept_no_suggestions() {
        let l = log();
        let svc = SuggestionService::new(&l);
        assert!(svc.suggestions(&t("quantum chromodynamics"), 10).is_empty());
    }

    #[test]
    fn phrase_suggestions_strict() {
        let l = log();
        let svc = SuggestionService::new(&l);
        let sugg = svc.phrase_suggestions(&t("global warming"), 10);
        assert_eq!(sugg.len(), 2);
        for s in sugg {
            assert!(crate::log::contains_phrase(&s.terms, &t("global warming")));
        }
    }

    /// Audit: every caller-supplied shape is total — empty concepts,
    /// zero budgets, and stop-word-only probes return empty instead of
    /// panicking or probing out of range.
    #[test]
    fn adversarial_inputs_are_total() {
        let l = log();
        let svc = SuggestionService::new(&l);
        assert!(svc.suggestions(&[], 10).is_empty());
        assert!(svc.suggestions(&t("global warming"), 0).is_empty());
        assert!(svc.phrase_suggestions(&[], 10).is_empty());
        assert!(svc
            .phrase_suggestions(&t("absent terms entirely"), 10)
            .is_empty());
        let empty_log = QueryLog::new();
        let empty_svc = SuggestionService::new(&empty_log);
        assert!(empty_svc.suggestions(&t("anything"), 10).is_empty());
        assert!(empty_svc.paper_suggestions(&t("anything")).is_empty());
    }

    #[test]
    fn stopwords_do_not_drive_relatedness() {
        let mut l = QueryLog::new();
        l.add("the weather", 10);
        l.add("the economy", 10);
        let svc = SuggestionService::new(&l);
        // "the" is a stop-word: no overlap counted through it.
        assert!(svc.suggestions(&t("the weather"), 10).is_empty());
    }
}
