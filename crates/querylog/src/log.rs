//! The query-log store and its frequency counters.
//!
//! The paper's evaluation "considered the most popular 20 million queries
//! submitted to the engine in the week of November 17th–23rd, 2007"
//! (§V-A.1) and mines two frequency features from them (Table I):
//! `freq_exact` — the number of queries identical to the concept — and
//! `freq_phrase_contained` — the number of queries containing the concept
//! as a contiguous phrase. Both counters are pre-computed here with an
//! n-gram table so feature extraction is O(1) per lookup.
//!
//! Internally every term is interned into a dense [`TermId`] and all
//! tables are keyed on id sequences (`Box<[TermId]>`) hashed directly —
//! no joined-`String` keys anywhere on the lookup path. The `&[String]`
//! entry points survive as thin shims that resolve terms through the
//! interner first (an unknown term proves the count is zero).

use ctxrank_text::{Interner, TermId};
use std::collections::HashMap;

/// Longest phrase length tracked by the n-gram containment table.
pub const MAX_NGRAM: usize = 5;

/// Typed failure for fallible [`QueryLog`] accessors taking untrusted
/// indices (audited: no panic on any caller-supplied value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// A query index at or past [`QueryLog::num_distinct`].
    QueryIndex { index: usize, distinct: usize },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::QueryIndex { index, distinct } => {
                write!(
                    f,
                    "query index {index} out of range ({distinct} distinct queries)"
                )
            }
        }
    }
}

impl std::error::Error for LogError {}

/// One distinct query with its submission count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogQuery {
    /// Normalized query terms (lower-case, punctuation-trimmed).
    pub terms: Vec<String>,
    /// Number of times this exact query was submitted.
    pub freq: u64,
}

/// An aggregated search-engine query log.
#[derive(Debug, Default)]
pub struct QueryLog {
    queries: Vec<LogQuery>,
    /// Interned id sequence of each query (parallel to `queries`).
    query_ids: Vec<Box<[TermId]>>,
    /// Term → dense id. Every term of every query is interned.
    interner: Interner,
    /// Id sequence -> index into `queries`.
    exact: HashMap<Box<[TermId]>, usize>,
    /// n-gram id sequence -> total freq of queries containing it as a
    /// contiguous phrase (each query counted once per distinct gram).
    ngram_freq: HashMap<Box<[TermId]>, u64>,
    /// Indexed by `TermId`: total freq of queries containing the term.
    term_freq: Vec<u64>,
    /// Sum of all query frequencies.
    total: u64,
}

impl QueryLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `freq` submissions of `query` (raw text; it will be normalized
    /// and tokenized). Repeated adds of the same query accumulate.
    pub fn add(&mut self, query: &str, freq: u64) {
        let terms: Vec<String> = ctxrank_text::tokenize_terms(query);
        if terms.is_empty() || freq == 0 {
            return;
        }
        self.add_terms(terms, freq);
    }

    /// Add a pre-tokenized query.
    pub fn add_terms(&mut self, terms: Vec<String>, freq: u64) {
        if terms.is_empty() || freq == 0 {
            return;
        }
        let ids: Vec<TermId> = terms.iter().map(|t| self.interner.intern(t)).collect();
        self.term_freq.resize(self.interner.len(), 0);
        // Counters saturate instead of overflowing: `freq` is untrusted
        // (it arrives straight from decoded log events) and u64::MAX
        // submissions is already "infinitely popular".
        match self.exact.get(ids.as_slice()) {
            Some(&i) => {
                self.queries[i].freq = self.queries[i].freq.saturating_add(freq);
            }
            None => {
                self.queries.push(LogQuery { terms, freq });
                self.query_ids.push(ids.clone().into_boxed_slice());
                self.exact
                    .insert(ids.clone().into_boxed_slice(), self.queries.len() - 1);
            }
        }
        // Update n-gram containment counts (each distinct gram of the
        // query counted once, weighted by freq).
        let mut seen: std::collections::HashSet<&[TermId]> = std::collections::HashSet::new();
        for n in 1..=MAX_NGRAM.min(ids.len()) {
            for start in 0..=(ids.len() - n) {
                let gram = &ids[start..start + n];
                if seen.insert(gram) {
                    match self.ngram_freq.get_mut(gram) {
                        Some(f) => *f = f.saturating_add(freq),
                        None => {
                            self.ngram_freq.insert(gram.into(), freq);
                        }
                    }
                }
            }
        }
        // Term containment (distinct terms only).
        let mut term_seen: Vec<TermId> = ids.clone();
        term_seen.sort_unstable();
        term_seen.dedup();
        for t in term_seen {
            self.term_freq[t.idx()] = self.term_freq[t.idx()].saturating_add(freq);
        }
        self.total = self.total.saturating_add(freq);
    }

    /// Number of distinct queries.
    pub fn num_distinct(&self) -> usize {
        self.queries.len()
    }

    /// Sum of all query frequencies (total submissions).
    pub fn total_freq(&self) -> u64 {
        self.total
    }

    /// Iterate the distinct queries.
    pub fn queries(&self) -> impl Iterator<Item = &LogQuery> {
        self.queries.iter()
    }

    /// The term interner backing the id-keyed tables.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Interned id sequence of the `i`-th distinct query (parallel to
    /// [`Self::queries`]).
    ///
    /// # Panics
    /// Panics when `i >= num_distinct()`; use [`Self::try_query_ids`]
    /// for untrusted indices.
    pub fn query_ids(&self, i: usize) -> &[TermId] {
        self.try_query_ids(i).expect("query index in range")
    }

    /// Fallible form of [`Self::query_ids`]: a typed error instead of a
    /// panic on an out-of-range index.
    pub fn try_query_ids(&self, i: usize) -> Result<&[TermId], LogError> {
        self.query_ids
            .get(i)
            .map(|ids| ids.as_ref())
            .ok_or(LogError::QueryIndex {
                index: i,
                distinct: self.queries.len(),
            })
    }

    /// Resolve a term sequence against the log's interner; `None` when
    /// any term never occurred in a query.
    pub fn ids_of(&self, terms: &[String]) -> Option<Vec<TermId>> {
        self.interner.ids_of(terms)
    }

    /// Feature 1, `freq_exact`: submissions of queries exactly equal to
    /// the concept.
    pub fn freq_exact(&self, concept_terms: &[String]) -> u64 {
        match self.ids_of(concept_terms) {
            Some(ids) => self.freq_exact_ids(&ids),
            None => 0,
        }
    }

    /// Id-keyed form of [`Self::freq_exact`].
    pub fn freq_exact_ids(&self, concept_ids: &[TermId]) -> u64 {
        if concept_ids.is_empty() {
            return 0;
        }
        self.exact
            .get(concept_ids)
            .map_or(0, |&i| self.queries[i].freq)
    }

    /// Feature 2, `freq_phrase_contained`: submissions of queries that
    /// contain the concept as a contiguous phrase (includes exact
    /// matches). Phrases longer than [`MAX_NGRAM`] terms fall back to a
    /// linear scan.
    pub fn freq_phrase_contained(&self, concept_terms: &[String]) -> u64 {
        match self.ids_of(concept_terms) {
            Some(ids) => self.freq_phrase_contained_ids(&ids),
            None => 0,
        }
    }

    /// Id-keyed form of [`Self::freq_phrase_contained`].
    pub fn freq_phrase_contained_ids(&self, concept_ids: &[TermId]) -> u64 {
        if concept_ids.is_empty() {
            return 0;
        }
        if concept_ids.len() <= MAX_NGRAM {
            return self.ngram_freq.get(concept_ids).copied().unwrap_or(0);
        }
        // A query containing the full phrase necessarily contains its
        // leading MAX_NGRAM-gram, so an absent prefix gram proves the
        // linear scan below would find nothing — skip it entirely. This
        // is the common case: most over-length probes are negative.
        if !self.ngram_freq.contains_key(&concept_ids[..MAX_NGRAM]) {
            return 0;
        }
        self.query_ids
            .iter()
            .zip(&self.queries)
            .filter(|(ids, _)| contains_subseq(ids, concept_ids))
            .map(|(_, q)| q.freq)
            .sum()
    }

    /// Submissions of queries containing `term` anywhere.
    pub fn freq_term_contained(&self, term: &str) -> u64 {
        self.interner
            .get(term)
            .map_or(0, |id| self.freq_term_id(id))
    }

    /// Id-keyed form of [`Self::freq_term_contained`].
    pub fn freq_term_id(&self, id: TermId) -> u64 {
        self.term_freq.get(id.idx()).copied().unwrap_or(0)
    }

    /// Probability that a random submission contains `term`.
    pub fn p_term(&self, term: &str) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.freq_term_contained(term) as f64 / self.total as f64
        }
    }

    /// Id-keyed form of [`Self::p_term`].
    pub fn p_term_id(&self, id: TermId) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.freq_term_id(id) as f64 / self.total as f64
        }
    }

    /// Probability that a random submission contains the contiguous
    /// phrase.
    pub fn p_phrase(&self, terms: &[String]) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.freq_phrase_contained(terms) as f64 / self.total as f64
        }
    }

    /// Id-keyed form of [`Self::p_phrase`].
    pub fn p_phrase_ids(&self, ids: &[TermId]) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.freq_phrase_contained_ids(ids) as f64 / self.total as f64
        }
    }
}

/// Does `haystack` contain `needle` as a contiguous subsequence?
pub fn contains_phrase(haystack: &[String], needle: &[String]) -> bool {
    if needle.is_empty() || needle.len() > haystack.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Id-slice version of [`contains_phrase`].
fn contains_subseq(haystack: &[TermId], needle: &[TermId]) -> bool {
    if needle.is_empty() || needle.len() > haystack.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn sample_log() -> QueryLog {
        let mut log = QueryLog::new();
        log.add("global warming", 100);
        log.add("global warming effects", 40);
        log.add("effects of global warming on ice", 10);
        log.add("warming trends", 5);
        log.add("tom cruise", 200);
        log
    }

    #[test]
    fn exact_frequency() {
        let log = sample_log();
        assert_eq!(log.freq_exact(&t("global warming")), 100);
        assert_eq!(log.freq_exact(&t("tom cruise")), 200);
        assert_eq!(log.freq_exact(&t("warming")), 0);
    }

    #[test]
    fn phrase_containment_includes_exact() {
        let log = sample_log();
        // 100 (exact) + 40 + 10 = 150.
        assert_eq!(log.freq_phrase_contained(&t("global warming")), 150);
        assert_eq!(log.freq_phrase_contained(&t("warming")), 155);
    }

    #[test]
    fn accumulation_of_repeated_adds() {
        let mut log = QueryLog::new();
        log.add("jaguar", 10);
        log.add("jaguar", 15);
        assert_eq!(log.freq_exact(&t("jaguar")), 25);
        assert_eq!(log.num_distinct(), 1);
        assert_eq!(log.total_freq(), 25);
    }

    #[test]
    fn normalization_applied() {
        let mut log = QueryLog::new();
        log.add("Global WARMING!", 7);
        assert_eq!(log.freq_exact(&t("global warming")), 7);
    }

    #[test]
    fn empty_and_zero_ignored() {
        let mut log = QueryLog::new();
        log.add("", 10);
        log.add("   ", 10);
        log.add("real", 0);
        assert_eq!(log.num_distinct(), 0);
        assert_eq!(log.total_freq(), 0);
    }

    #[test]
    fn long_phrase_linear_fallback() {
        let mut log = QueryLog::new();
        log.add("a b c d e f g", 3);
        let phrase = t("a b c d e f");
        assert!(phrase.len() > MAX_NGRAM);
        assert_eq!(log.freq_phrase_contained(&phrase), 3);
        assert_eq!(log.freq_phrase_contained(&t("b c d e f g")), 3);
        assert_eq!(log.freq_phrase_contained(&t("a c d e f g")), 0);
    }

    /// The over-length path prunes on the leading MAX_NGRAM-gram: a
    /// phrase whose prefix gram exists but whose full form does not must
    /// still return 0 via the scan, and reordered/absent prefixes must
    /// return 0 via the early exit — both agreeing with ground truth.
    #[test]
    fn long_phrase_prefix_pruning_agrees_with_ground_truth() {
        let mut log = QueryLog::new();
        log.add("a b c d e f g", 3);
        log.add("a b c d e x y", 2);
        // Prefix "a b c d e" present, full phrase present → counted.
        assert_eq!(log.freq_phrase_contained(&t("a b c d e f")), 3);
        // Prefix present, full phrase absent → scan finds nothing.
        assert_eq!(log.freq_phrase_contained(&t("a b c d e z")), 0);
        // Prefix gram itself never occurred → early exit.
        assert_eq!(log.freq_phrase_contained(&t("b a c d e f")), 0);
        // Known terms, but a phrase longer than any query.
        assert_eq!(log.freq_phrase_contained(&t("a b c d e f g x")), 0);
    }

    #[test]
    fn probabilities() {
        let log = sample_log();
        let total = log.total_freq() as f64;
        assert!((log.p_term("warming") - 155.0 / total).abs() < 1e-12);
        assert_eq!(log.p_term("absent"), 0.0);
        assert!(log.p_phrase(&t("global warming")) > 0.0);
    }

    #[test]
    fn contains_phrase_edges() {
        assert!(!contains_phrase(&t("a b"), &t("")));
        assert!(!contains_phrase(&t("a"), &t("a b")));
        assert!(contains_phrase(&t("x a b y"), &t("a b")));
        assert!(!contains_phrase(&t("a x b"), &t("a b")));
    }

    #[test]
    fn repeated_gram_in_one_query_counted_once() {
        let mut log = QueryLog::new();
        log.add("spam spam", 4);
        assert_eq!(log.freq_phrase_contained(&t("spam")), 4);
        assert_eq!(log.freq_term_contained("spam"), 4);
    }

    #[test]
    fn id_and_string_lookups_agree() {
        let log = sample_log();
        for q in [t("global warming"), t("warming"), t("tom cruise")] {
            let ids = log.ids_of(&q).expect("known terms");
            assert_eq!(log.freq_exact(&q), log.freq_exact_ids(&ids));
            assert_eq!(
                log.freq_phrase_contained(&q),
                log.freq_phrase_contained_ids(&ids)
            );
            assert_eq!(log.p_phrase(&q), log.p_phrase_ids(&ids));
        }
        assert!(log.ids_of(&t("totally absent")).is_none());
    }

    /// Audit: untrusted indices get a typed error, not a panic.
    #[test]
    fn out_of_range_query_index_is_a_typed_error() {
        let log = sample_log();
        let n = log.num_distinct();
        assert!(log.try_query_ids(n - 1).is_ok());
        let err = log.try_query_ids(n).expect_err("past the end");
        assert_eq!(
            err,
            LogError::QueryIndex {
                index: n,
                distinct: n
            }
        );
        assert!(err.to_string().contains("out of range"));
        assert!(QueryLog::new().try_query_ids(0).is_err());
    }

    /// Audit: adversarial frequencies saturate every counter instead of
    /// overflowing (debug builds would otherwise panic on `+=`).
    #[test]
    fn adversarial_frequencies_saturate() {
        let mut log = QueryLog::new();
        log.add("hot query", u64::MAX);
        log.add("hot query", u64::MAX);
        log.add("other hot thing", u64::MAX);
        assert_eq!(log.freq_exact(&t("hot query")), u64::MAX);
        assert_eq!(log.freq_phrase_contained(&t("hot")), u64::MAX);
        assert_eq!(log.freq_term_contained("hot"), u64::MAX);
        assert_eq!(log.total_freq(), u64::MAX);
        // Probabilities stay finite and in [0, 1].
        let p = log.p_term("hot");
        assert!((0.0..=1.0).contains(&p), "p {p}");
    }

    #[test]
    fn query_ids_parallel_to_queries() {
        let log = sample_log();
        for (i, q) in log.queries().enumerate() {
            let ids = log.query_ids(i);
            assert_eq!(ids.len(), q.terms.len());
            for (id, term) in ids.iter().zip(&q.terms) {
                assert_eq!(log.interner().term(*id), Some(term.as_str()));
            }
        }
    }
}
