//! Unit extraction from query logs.
//!
//! A *unit* "is simply a multi-term entity in the query logs which refers
//! to a single concept" (§II-B, after Parikh & Kapur \[7\] and the Kapur &
//! Joshi patent \[8\]). Units are constructed iteratively: in the first
//! iteration every single term appearing in queries is a unit; in each
//! following iteration, units that frequently co-occur adjacently in
//! queries are combined into larger candidate units, validated by
//! pointwise mutual information (Eq. 1):
//!
//! ```text
//! I(x, y) = log( p(x, y) / (p(x) p(y)) )
//! ```
//!
//! where `p(x, y)` is the probability of observing `x` and `y` together
//! (adjacent in a query) and `p(x)`, `p(y)` the marginal probabilities.
//! Unit scores are normalized to `[0, 1]`, low scores are punished and
//! pruned, mirroring the treatment of term-vector weights.

use crate::log::QueryLog;
use std::collections::HashMap;

/// Tuning knobs for unit extraction.
#[derive(Debug, Clone)]
pub struct UnitConfig {
    /// A candidate pair must co-occur in queries with at least this total
    /// frequency before MI is even computed.
    pub min_pair_freq: u64,
    /// Minimum mutual information (nats) to accept a merged unit.
    pub min_mi: f64,
    /// Maximum number of terms in a unit.
    pub max_terms: usize,
    /// Scores below this threshold are multiplied by `punish_factor`.
    pub punish_threshold: f64,
    /// Multiplier applied to sub-threshold scores.
    pub punish_factor: f64,
    /// Units whose (possibly punished) score falls below this are dropped.
    pub drop_below: f64,
}

impl Default for UnitConfig {
    fn default() -> Self {
        Self {
            min_pair_freq: 3,
            min_mi: 1.0,
            max_terms: 4,
            punish_threshold: 0.05,
            punish_factor: 0.5,
            drop_below: 0.01,
        }
    }
}

/// A validated unit: a term sequence that behaves as one concept.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// The unit's terms in order.
    pub terms: Vec<String>,
    /// Total frequency of queries containing the unit as a phrase.
    pub freq: u64,
    /// Raw mutual information of the final merge (0 for single terms).
    pub mi: f64,
    /// Normalized score in `[0, 1]`.
    pub score: f64,
}

/// The set of extracted units, keyed by the space-joined term sequence.
#[derive(Debug, Default)]
pub struct UnitDictionary {
    units: HashMap<String, Unit>,
}

impl UnitDictionary {
    /// Look up a unit by its term sequence.
    pub fn get(&self, terms: &[String]) -> Option<&Unit> {
        self.units.get(&terms.join(" "))
    }

    /// Look up by the pre-joined key.
    pub fn get_key(&self, key: &str) -> Option<&Unit> {
        self.units.get(key)
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when no units were extracted.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Iterate all units in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Unit> {
        self.units.values()
    }

    /// The unit score for a term sequence, zero when absent. This is
    /// feature 3 of Table I (`unit_score`).
    pub fn score(&self, terms: &[String]) -> f64 {
        self.get(terms).map_or(0.0, |u| u.score)
    }

    /// Number of multi-term sub-units (length > 2 per the paper's
    /// `subconcepts` feature uses a score threshold; here we expose the raw
    /// lookup and let the feature layer filter).
    pub fn subunits_of(&self, terms: &[String], min_len: usize, min_score: f64) -> usize {
        if terms.len() < min_len {
            return 0;
        }
        let mut count = 0;
        for n in min_len..terms.len() {
            for start in 0..=(terms.len() - n) {
                if let Some(u) = self.get(&terms[start..start + n]) {
                    if u.score > min_score {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    fn insert(&mut self, unit: Unit) {
        self.units.insert(unit.terms.join(" "), unit);
    }
}

/// Extract units from `log` with the given configuration.
///
/// Iteration 1 seeds single-term units from all query terms. Each later
/// iteration considers adjacent (unit, unit) pairs inside queries, keeps
/// pairs with co-occurrence frequency ≥ `min_pair_freq` and MI ≥ `min_mi`,
/// and repeats until no new unit appears or `max_terms` is reached.
/// Finally scores are max-normalized, punished and pruned.
pub fn extract_units(log: &QueryLog, config: &UnitConfig) -> UnitDictionary {
    let mut dict = UnitDictionary::default();

    // Iteration 1: single terms.
    let mut single: HashMap<&str, u64> = HashMap::new();
    for q in log.queries() {
        for t in &q.terms {
            *single.entry(t.as_str()).or_insert(0) += q.freq;
        }
    }
    for (term, freq) in &single {
        dict.insert(Unit {
            terms: vec![term.to_string()],
            freq: *freq,
            mi: 0.0,
            score: 0.0, // filled in during normalization below
        });
    }

    // Later iterations: merge adjacent units of length l with single terms
    // or other units, growing by segmentation of each query.
    let mut current_len = 1;
    while current_len < config.max_terms {
        let mut pair_freq: HashMap<(String, String), u64> = HashMap::new();
        for q in log.queries() {
            // Find adjacent (left, right) pairs where `left` is a known
            // unit of length `current_len` and `right` a known single
            // term, producing a candidate of length current_len + 1.
            if q.terms.len() < current_len + 1 {
                continue;
            }
            for start in 0..=(q.terms.len() - current_len - 1) {
                let left = q.terms[start..start + current_len].join(" ");
                let right = &q.terms[start + current_len];
                if dict.get_key(&left).is_some() && dict.get_key(right).is_some() {
                    *pair_freq.entry((left.clone(), right.clone())).or_insert(0) += q.freq;
                }
            }
        }
        let mut added = 0;
        for ((left, right), freq) in pair_freq {
            if freq < config.min_pair_freq {
                continue;
            }
            let left_terms: Vec<String> = left.split(' ').map(str::to_string).collect();
            let mut terms = left_terms.clone();
            terms.push(right.clone());
            let p_joint = log.p_phrase(&terms);
            let p_left = log.p_phrase(&left_terms);
            let p_right = log.p_term(&right);
            if p_joint <= 0.0 || p_left <= 0.0 || p_right <= 0.0 {
                continue;
            }
            let mi = (p_joint / (p_left * p_right)).ln();
            if mi >= config.min_mi {
                dict.insert(Unit {
                    terms,
                    freq,
                    mi,
                    score: 0.0,
                });
                added += 1;
            }
        }
        if added == 0 {
            break;
        }
        current_len += 1;
    }

    normalize_scores(&mut dict, config);
    dict
}

/// Normalize unit scores to `[0, 1]`, punish low scores, prune.
///
/// Multi-term units are scored by their MI relative to the maximum MI
/// observed; single-term units by log-frequency relative to the maximum
/// log-frequency (a frequency proxy, since MI is undefined for one term).
fn normalize_scores(dict: &mut UnitDictionary, config: &UnitConfig) {
    let max_mi = dict.units.values().map(|u| u.mi).fold(0.0_f64, f64::max);
    let max_logfreq = dict
        .units
        .values()
        .filter(|u| u.terms.len() == 1)
        .map(|u| (u.freq as f64).ln_1p())
        .fold(0.0_f64, f64::max);

    for u in dict.units.values_mut() {
        u.score = if u.terms.len() > 1 {
            if max_mi > 0.0 {
                (u.mi / max_mi).clamp(0.0, 1.0)
            } else {
                0.0
            }
        } else if max_logfreq > 0.0 {
            ((u.freq as f64).ln_1p() / max_logfreq).clamp(0.0, 1.0)
        } else {
            0.0
        };
        if u.score < config.punish_threshold {
            u.score *= config.punish_factor;
        }
    }
    dict.units.retain(|_, u| u.score >= config.drop_below);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    /// A log where "new york" always co-occurs but "red"/"car" appear
    /// mostly independently.
    fn cooccurrence_log() -> QueryLog {
        let mut log = QueryLog::new();
        log.add("new york", 50);
        log.add("new york hotels", 30);
        log.add("new york subway map", 20);
        log.add("red car", 5);
        log.add("red apple", 40);
        log.add("car insurance", 45);
        log.add("blue car", 30);
        log.add("red paint", 30);
        for i in 0..30 {
            log.add(&format!("filler query {i}"), 10);
        }
        log
    }

    #[test]
    fn strong_collocation_becomes_unit() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        let ny = dict.get(&t("new york"));
        assert!(ny.is_some(), "'new york' should be a unit");
        assert!(ny.unwrap().mi > 0.0);
    }

    #[test]
    fn weak_pair_rejected_or_scored_lower() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        let ny_score = dict.score(&t("new york"));
        let rc_score = dict.score(&t("red car"));
        assert!(
            ny_score > rc_score,
            "strong collocation must outscore weak one ({ny_score} vs {rc_score})"
        );
    }

    #[test]
    fn three_term_units_grow() {
        let mut log = QueryLog::new();
        log.add("san francisco bay", 40);
        log.add("san francisco bay area", 25);
        log.add("san francisco", 60);
        for i in 0..50 {
            log.add(&format!("noise number {i}"), 8);
        }
        let dict = extract_units(&log, &UnitConfig::default());
        assert!(dict.get(&t("san francisco")).is_some());
        assert!(
            dict.get(&t("san francisco bay")).is_some(),
            "3-term unit should be extracted"
        );
    }

    #[test]
    fn scores_normalized_to_unit_interval() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        for u in dict.iter() {
            assert!((0.0..=1.0).contains(&u.score), "{:?}", u);
        }
    }

    #[test]
    fn single_terms_present_with_frequency_scores() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        let red = dict.get(&t("red")).expect("single term unit");
        assert_eq!(red.terms.len(), 1);
        assert!(red.score > 0.0);
    }

    #[test]
    fn empty_log_no_units() {
        let dict = extract_units(&QueryLog::new(), &UnitConfig::default());
        assert!(dict.is_empty());
    }

    #[test]
    fn min_pair_freq_gate() {
        let mut log = QueryLog::new();
        log.add("rare pair", 1); // below min_pair_freq = 3
        log.add("rare", 100);
        log.add("pair", 100);
        let dict = extract_units(&log, &UnitConfig::default());
        assert!(dict.get(&t("rare pair")).is_none());
    }

    #[test]
    fn subunits_counting() {
        let mut log = QueryLog::new();
        log.add("san francisco bay", 50);
        log.add("san francisco", 80);
        for i in 0..50 {
            log.add(&format!("noise term {i}"), 10);
        }
        let dict = extract_units(&log, &UnitConfig::default());
        // "san francisco bay" contains the sub-unit "san francisco"
        // (length 2 >= min_len 2).
        let n = dict.subunits_of(&t("san francisco bay"), 2, 0.0);
        assert!(n >= 1, "expected at least one subunit, got {n}");
    }

    #[test]
    fn score_lookup_absent_is_zero() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        assert_eq!(dict.score(&t("does not exist")), 0.0);
    }
}
