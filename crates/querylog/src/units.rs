//! Unit extraction from query logs.
//!
//! A *unit* "is simply a multi-term entity in the query logs which refers
//! to a single concept" (§II-B, after Parikh & Kapur \[7\] and the Kapur &
//! Joshi patent \[8\]). Units are constructed iteratively: in the first
//! iteration every single term appearing in queries is a unit; in each
//! following iteration, units that frequently co-occur adjacently in
//! queries are combined into larger candidate units, validated by
//! pointwise mutual information (Eq. 1):
//!
//! ```text
//! I(x, y) = log( p(x, y) / (p(x) p(y)) )
//! ```
//!
//! where `p(x, y)` is the probability of observing `x` and `y` together
//! (adjacent in a query) and `p(x)`, `p(y)` the marginal probabilities.
//! Unit scores are normalized to `[0, 1]`, low scores are punished and
//! pruned, mirroring the treatment of term-vector weights.
//!
//! Extraction runs entirely in the query log's id space — candidate
//! phrases are `&[TermId]` slices of interned queries, hashed directly.
//! The finished [`UnitDictionary`] is frozen onto its *own* interner
//! (covering exactly the terms used by at least one unit) and a
//! [`PhraseTrie`] mapping id sequences to units, so detectors can walk
//! token streams incrementally without joining strings.

use crate::log::QueryLog;
use ctxrank_text::trie::NodeId;
use ctxrank_text::{Interner, PhraseTrie, TermId};
use std::collections::{HashMap, HashSet};

/// Tuning knobs for unit extraction.
#[derive(Debug, Clone)]
pub struct UnitConfig {
    /// A candidate pair must co-occur in queries with at least this total
    /// frequency before MI is even computed.
    pub min_pair_freq: u64,
    /// Minimum mutual information (nats) to accept a merged unit.
    pub min_mi: f64,
    /// Maximum number of terms in a unit.
    pub max_terms: usize,
    /// Scores below this threshold are multiplied by `punish_factor`.
    pub punish_threshold: f64,
    /// Multiplier applied to sub-threshold scores.
    pub punish_factor: f64,
    /// Units whose (possibly punished) score falls below this are dropped.
    pub drop_below: f64,
}

impl Default for UnitConfig {
    fn default() -> Self {
        Self {
            min_pair_freq: 3,
            min_mi: 1.0,
            max_terms: 4,
            punish_threshold: 0.05,
            punish_factor: 0.5,
            drop_below: 0.01,
        }
    }
}

/// A validated unit: a term sequence that behaves as one concept.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// The unit's terms in order.
    pub terms: Vec<String>,
    /// Total frequency of queries containing the unit as a phrase.
    pub freq: u64,
    /// Raw mutual information of the final merge (0 for single terms).
    pub mi: f64,
    /// Normalized score in `[0, 1]`.
    pub score: f64,
}

/// The set of extracted units, keyed by term-id sequence through a
/// [`PhraseTrie`] over the dictionary's own interner.
#[derive(Debug, Default)]
pub struct UnitDictionary {
    /// Units in deterministic (id-sequence-sorted) order.
    units: Vec<Unit>,
    /// Space-joined surface of each unit, parallel to `units`.
    surfaces: Vec<String>,
    /// Terms used by at least one unit.
    interner: Interner,
    /// Id sequence -> index into `units`.
    trie: PhraseTrie<u32>,
}

impl UnitDictionary {
    /// The dictionary's term interner. Terms absent here occur in no
    /// unit, so detectors can drop them from consideration up front.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Root node for an incremental [`Self::step`] walk.
    pub fn root(&self) -> NodeId {
        PhraseTrie::<u32>::ROOT
    }

    /// Extend a trie walk by one term; `None` when no unit continues
    /// through `t` from `node`.
    #[inline]
    pub fn step(&self, node: NodeId, t: TermId) -> Option<NodeId> {
        self.trie.step(node, t)
    }

    /// The unit whose term sequence ends exactly at `node`, if any.
    #[inline]
    pub fn unit_at(&self, node: NodeId) -> Option<&Unit> {
        self.trie.value(node).map(|&i| &self.units[i as usize])
    }

    /// The index of the unit ending exactly at `node`, if any — the
    /// allocation-free handle for dense per-document accumulators.
    #[inline]
    pub fn unit_index_at(&self, node: NodeId) -> Option<u32> {
        self.trie.value(node).copied()
    }

    /// The unit at `idx` (as returned by [`Self::unit_index_at`]).
    #[inline]
    pub fn unit(&self, idx: u32) -> &Unit {
        &self.units[idx as usize]
    }

    /// Precomputed space-joined surface of the unit at `idx`.
    #[inline]
    pub fn surface(&self, idx: u32) -> &str {
        &self.surfaces[idx as usize]
    }

    /// Index of the single-term unit for `id`, if one exists.
    #[inline]
    pub fn single_unit(&self, id: TermId) -> Option<u32> {
        self.trie
            .step(PhraseTrie::<u32>::ROOT, id)
            .and_then(|n| self.trie.value(n).copied())
    }

    /// Look up a unit by its id sequence (ids from [`Self::interner`]).
    pub fn get_ids(&self, ids: &[TermId]) -> Option<&Unit> {
        self.trie.get(ids).map(|&i| &self.units[i as usize])
    }

    /// Look up a unit by its term sequence.
    pub fn get(&self, terms: &[String]) -> Option<&Unit> {
        let ids = self.interner.ids_of(terms)?;
        self.get_ids(&ids)
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when no units were extracted.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Iterate all units in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Unit> {
        self.units.iter()
    }

    /// The unit score for a term sequence, zero when absent. This is
    /// feature 3 of Table I (`unit_score`).
    pub fn score(&self, terms: &[String]) -> f64 {
        self.get(terms).map_or(0.0, |u| u.score)
    }

    /// Number of multi-term sub-units (length > 2 per the paper's
    /// `subconcepts` feature uses a score threshold; here we expose the raw
    /// lookup and let the feature layer filter).
    pub fn subunits_of(&self, terms: &[String], min_len: usize, min_score: f64) -> usize {
        if terms.len() < min_len {
            return 0;
        }
        let ids = self.interner.map_tokens(terms);
        let mut count = 0;
        for start in 0..terms.len() {
            let mut node = self.root();
            for (len, id) in ids[start..].iter().enumerate().map(|(k, id)| (k + 1, id)) {
                let Some(t) = id else { break };
                let Some(next) = self.step(node, *t) else {
                    break;
                };
                node = next;
                // Proper sub-units only: shorter than the full sequence.
                if len >= min_len && len < terms.len() {
                    if let Some(u) = self.unit_at(node) {
                        if u.score > min_score {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }

    fn freeze(&mut self, unit: Unit) {
        let ids: Vec<TermId> = unit.terms.iter().map(|t| self.interner.intern(t)).collect();
        let idx = self.units.len() as u32;
        if self.trie.insert(&ids, idx).is_none() {
            self.surfaces.push(unit.terms.join(" "));
            self.units.push(unit);
        }
    }
}

/// A unit under construction, in the *log's* id space.
struct Draft {
    ids: Vec<TermId>,
    freq: u64,
    mi: f64,
    score: f64,
}

/// Extract units from `log` with the given configuration.
///
/// Iteration 1 seeds single-term units from all query terms. Each later
/// iteration considers adjacent (unit, unit) pairs inside queries, keeps
/// pairs with co-occurrence frequency ≥ `min_pair_freq` and MI ≥ `min_mi`,
/// and repeats until no new unit appears or `max_terms` is reached.
/// Finally scores are max-normalized, punished and pruned.
pub fn extract_units(log: &QueryLog, config: &UnitConfig) -> UnitDictionary {
    let mut drafts: Vec<Draft> = Vec::new();
    let mut known: HashSet<Box<[TermId]>> = HashSet::new();

    // Iteration 1: single terms, occurrence-weighted (a term appearing
    // twice in one query counts that query's frequency twice).
    let mut single_freq: Vec<u64> = vec![0; log.interner().len()];
    for (qi, q) in log.queries().enumerate() {
        for id in log.query_ids(qi) {
            single_freq[id.idx()] += q.freq;
        }
    }
    for (idx, &freq) in single_freq.iter().enumerate() {
        if freq == 0 {
            continue;
        }
        let id = TermId(idx as u32);
        known.insert(vec![id].into_boxed_slice());
        drafts.push(Draft {
            ids: vec![id],
            freq,
            mi: 0.0,
            score: 0.0, // filled in during normalization below
        });
    }

    // Later iterations: merge adjacent units of length l with single terms
    // or other units, growing by segmentation of each query.
    let mut current_len = 1;
    while current_len < config.max_terms {
        let mut pair_freq: HashMap<Box<[TermId]>, u64> = HashMap::new();
        for (qi, q) in log.queries().enumerate() {
            // Find adjacent (left, right) pairs where `left` is a known
            // unit of length `current_len` and `right` a known single
            // term, producing a candidate of length current_len + 1.
            let ids = log.query_ids(qi);
            if ids.len() < current_len + 1 {
                continue;
            }
            for start in 0..=(ids.len() - current_len - 1) {
                let cand = &ids[start..start + current_len + 1];
                let left = &cand[..current_len];
                let right = &cand[current_len..];
                if known.contains(left) && known.contains(right) {
                    match pair_freq.get_mut(cand) {
                        Some(f) => *f += q.freq,
                        None => {
                            pair_freq.insert(cand.into(), q.freq);
                        }
                    }
                }
            }
        }
        let mut added = 0;
        for (cand, freq) in pair_freq {
            if freq < config.min_pair_freq {
                continue;
            }
            let left = &cand[..current_len];
            let right = cand[current_len];
            let p_joint = log.p_phrase_ids(&cand);
            let p_left = log.p_phrase_ids(left);
            let p_right = log.p_term_id(right);
            if p_joint <= 0.0 || p_left <= 0.0 || p_right <= 0.0 {
                continue;
            }
            let mi = (p_joint / (p_left * p_right)).ln();
            if mi >= config.min_mi && known.insert(cand.clone()) {
                drafts.push(Draft {
                    ids: cand.into_vec(),
                    freq,
                    mi,
                    score: 0.0,
                });
                added += 1;
            }
        }
        if added == 0 {
            break;
        }
        current_len += 1;
    }

    normalize_scores(&mut drafts, config);

    // Freeze in id-sequence order so unit indices (and hence iteration
    // order) are deterministic regardless of hash-map iteration order.
    drafts.sort_by(|a, b| a.ids.cmp(&b.ids));
    let mut dict = UnitDictionary::default();
    for d in drafts {
        let terms: Vec<String> = d
            .ids
            .iter()
            .map(|&id| {
                log.interner()
                    .term(id)
                    .expect("draft ids come from the log interner")
                    .to_string()
            })
            .collect();
        dict.freeze(Unit {
            terms,
            freq: d.freq,
            mi: d.mi,
            score: d.score,
        });
    }
    dict
}

/// Normalize unit scores to `[0, 1]`, punish low scores, prune.
///
/// Multi-term units are scored by their MI relative to the maximum MI
/// observed; single-term units by log-frequency relative to the maximum
/// log-frequency (a frequency proxy, since MI is undefined for one term).
fn normalize_scores(drafts: &mut Vec<Draft>, config: &UnitConfig) {
    let max_mi = drafts.iter().map(|u| u.mi).fold(0.0_f64, f64::max);
    let max_logfreq = drafts
        .iter()
        .filter(|u| u.ids.len() == 1)
        .map(|u| (u.freq as f64).ln_1p())
        .fold(0.0_f64, f64::max);

    for u in drafts.iter_mut() {
        u.score = if u.ids.len() > 1 {
            if max_mi > 0.0 {
                (u.mi / max_mi).clamp(0.0, 1.0)
            } else {
                0.0
            }
        } else if max_logfreq > 0.0 {
            ((u.freq as f64).ln_1p() / max_logfreq).clamp(0.0, 1.0)
        } else {
            0.0
        };
        if u.score < config.punish_threshold {
            u.score *= config.punish_factor;
        }
    }
    drafts.retain(|u| u.score >= config.drop_below);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    /// A log where "new york" always co-occurs but "red"/"car" appear
    /// mostly independently.
    fn cooccurrence_log() -> QueryLog {
        let mut log = QueryLog::new();
        log.add("new york", 50);
        log.add("new york hotels", 30);
        log.add("new york subway map", 20);
        log.add("red car", 5);
        log.add("red apple", 40);
        log.add("car insurance", 45);
        log.add("blue car", 30);
        log.add("red paint", 30);
        for i in 0..30 {
            log.add(&format!("filler query {i}"), 10);
        }
        log
    }

    #[test]
    fn strong_collocation_becomes_unit() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        let ny = dict.get(&t("new york"));
        assert!(ny.is_some(), "'new york' should be a unit");
        assert!(ny.unwrap().mi > 0.0);
    }

    #[test]
    fn weak_pair_rejected_or_scored_lower() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        let ny_score = dict.score(&t("new york"));
        let rc_score = dict.score(&t("red car"));
        assert!(
            ny_score > rc_score,
            "strong collocation must outscore weak one ({ny_score} vs {rc_score})"
        );
    }

    #[test]
    fn three_term_units_grow() {
        let mut log = QueryLog::new();
        log.add("san francisco bay", 40);
        log.add("san francisco bay area", 25);
        log.add("san francisco", 60);
        for i in 0..50 {
            log.add(&format!("noise number {i}"), 8);
        }
        let dict = extract_units(&log, &UnitConfig::default());
        assert!(dict.get(&t("san francisco")).is_some());
        assert!(
            dict.get(&t("san francisco bay")).is_some(),
            "3-term unit should be extracted"
        );
    }

    #[test]
    fn scores_normalized_to_unit_interval() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        for u in dict.iter() {
            assert!((0.0..=1.0).contains(&u.score), "{:?}", u);
        }
    }

    #[test]
    fn single_terms_present_with_frequency_scores() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        let red = dict.get(&t("red")).expect("single term unit");
        assert_eq!(red.terms.len(), 1);
        assert!(red.score > 0.0);
    }

    #[test]
    fn empty_log_no_units() {
        let dict = extract_units(&QueryLog::new(), &UnitConfig::default());
        assert!(dict.is_empty());
    }

    #[test]
    fn min_pair_freq_gate() {
        let mut log = QueryLog::new();
        log.add("rare pair", 1); // below min_pair_freq = 3
        log.add("rare", 100);
        log.add("pair", 100);
        let dict = extract_units(&log, &UnitConfig::default());
        assert!(dict.get(&t("rare pair")).is_none());
    }

    #[test]
    fn subunits_counting() {
        let mut log = QueryLog::new();
        log.add("san francisco bay", 50);
        log.add("san francisco", 80);
        for i in 0..50 {
            log.add(&format!("noise term {i}"), 10);
        }
        let dict = extract_units(&log, &UnitConfig::default());
        // "san francisco bay" contains the sub-unit "san francisco"
        // (length 2 >= min_len 2).
        let n = dict.subunits_of(&t("san francisco bay"), 2, 0.0);
        assert!(n >= 1, "expected at least one subunit, got {n}");
    }

    #[test]
    fn subunits_match_naive_enumeration() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        let probes = [
            t("new york subway map"),
            t("new york hotels"),
            t("red car insurance"),
            t("unknownterm new york"),
        ];
        for terms in probes {
            for min_len in 1..=2 {
                let mut naive = 0;
                for n in min_len..terms.len() {
                    for start in 0..=(terms.len() - n) {
                        if let Some(u) = dict.get(&terms[start..start + n]) {
                            if u.score > 0.0 {
                                naive += 1;
                            }
                        }
                    }
                }
                assert_eq!(
                    dict.subunits_of(&terms, min_len, 0.0),
                    naive,
                    "terms={terms:?} min_len={min_len}"
                );
            }
        }
    }

    #[test]
    fn score_lookup_absent_is_zero() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        assert_eq!(dict.score(&t("does not exist")), 0.0);
    }

    #[test]
    fn id_and_string_lookups_agree() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        for u in dict.iter() {
            let ids = dict
                .interner()
                .ids_of(&u.terms)
                .expect("unit terms are interned");
            assert_eq!(dict.get_ids(&ids), Some(u));
            assert_eq!(dict.get(&u.terms), Some(u));
        }
    }

    #[test]
    fn trie_walk_reaches_every_unit() {
        let dict = extract_units(&cooccurrence_log(), &UnitConfig::default());
        for u in dict.iter() {
            let mut node = dict.root();
            for term in &u.terms {
                let id = dict.interner().get(term).expect("interned");
                node = dict.step(node, id).expect("walkable");
            }
            assert_eq!(dict.unit_at(node), Some(u));
        }
    }

    #[test]
    fn iteration_order_deterministic() {
        let a = extract_units(&cooccurrence_log(), &UnitConfig::default());
        let b = extract_units(&cooccurrence_log(), &UnitConfig::default());
        let seq_a: Vec<&Unit> = a.iter().collect();
        let seq_b: Vec<&Unit> = b.iter().collect();
        assert_eq!(seq_a, seq_b);
    }
}
