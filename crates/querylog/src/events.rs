//! The click-stream event model and its binary record codec.
//!
//! The paper's pipeline is batch: every model refresh re-reads the whole
//! click log. At the ORCAS/CWRCzech scale referenced in PAPERS.md that
//! log is tens of millions of click pairs, so the repo restructures
//! ingestion as an *event-sourced* append-only log: the tracking system
//! emits [`Event`]s, the segment store ([`crate::segment`]) makes them
//! durable, and projections fold sealed segments into serving artifacts
//! incrementally.
//!
//! ## Record format
//!
//! Events are encoded as self-delimiting, individually checksummed
//! records so a reader can always recover the longest valid prefix of a
//! torn file:
//!
//! ```text
//! +----------------+--------------------+------------------+
//! | len: u32 LE    | checksum: u32 LE   | payload: len B   |
//! +----------------+--------------------+------------------+
//! ```
//!
//! `len` is the payload length, `checksum` is FNV-1a (32-bit) over the
//! payload bytes. The payload starts with a one-byte tag (`1` = query,
//! `2` = click, `3` = rank-annotated click) followed by the tag's
//! fields; strings are `u32 LE`
//! length + UTF-8 bytes. Decoding is fully validating: any length that
//! overruns the buffer, checksum mismatch, unknown tag, or invalid
//! UTF-8 yields a typed [`DecodeError`] — never a panic — with the
//! byte offset of the offending record.

/// Payload tag for [`Event::Query`].
const TAG_QUERY: u8 = 1;
/// Payload tag for [`Event::Click`].
const TAG_CLICK: u8 = 2;
/// Payload tag for [`Event::RankedClick`].
const TAG_RANKED_CLICK: u8 = 3;

/// Hard cap on a single record's payload (1 MiB). Real events are tens
/// of bytes; the cap bounds the allocation a corrupt length prefix can
/// demand before the checksum gets a chance to reject it.
pub const MAX_RECORD_BYTES: u32 = 1 << 20;

/// One entry in the click stream.
///
/// Two kinds mirror the paper's two log sources: the *query log* (§II-A
/// concept mining, Table I frequency features) and the *click tracking
/// system* (§III CTR labels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A (pre-normalized) search query observed `freq` times.
    Query {
        /// Normalized terms, in order.
        terms: Vec<String>,
        /// Occurrence count this event contributes.
        freq: u64,
    },
    /// A click report for one annotated concept in one story: `views`
    /// impressions, `clicks` clicks (§III: per-entity views equal the
    /// story's views).
    Click {
        /// Story id the annotation appeared in.
        story: u64,
        /// The annotated surface form.
        surface: String,
        /// Sampled impressions.
        views: u64,
        /// Sampled clicks.
        clicks: u64,
    },
    /// A click report that also carries the rank the annotation was
    /// displayed at — the extra field counterfactual debiasing needs
    /// (a click at rank 0 and a click at rank 9 are *not* equal
    /// evidence under position bias).
    RankedClick {
        /// Story id the annotation appeared in.
        story: u64,
        /// The annotated surface form.
        surface: String,
        /// Display rank of the annotation (0 = top).
        rank: u32,
        /// Sampled impressions.
        views: u64,
        /// Sampled clicks.
        clicks: u64,
    },
}

/// Why a record (or a buffer of records) failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The record header or payload extends past the end of the buffer
    /// — the signature of a torn (partially written) tail record.
    Truncated { offset: usize },
    /// The payload checksum did not match — bytes were corrupted after
    /// the record was written.
    Checksum { offset: usize },
    /// The declared payload length exceeds [`MAX_RECORD_BYTES`] — a
    /// corrupt length prefix, rejected before allocating.
    Oversized { offset: usize, len: u32 },
    /// The payload tag byte named no known event kind.
    UnknownTag { offset: usize, tag: u8 },
    /// A string field was not valid UTF-8.
    Utf8 { offset: usize },
    /// The payload was shorter than its fields claim.
    Payload { offset: usize },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { offset } => {
                write!(f, "truncated record at byte {offset}")
            }
            DecodeError::Checksum { offset } => {
                write!(f, "checksum mismatch in record at byte {offset}")
            }
            DecodeError::Oversized { offset, len } => {
                write!(f, "record at byte {offset} claims {len} payload bytes")
            }
            DecodeError::UnknownTag { offset, tag } => {
                write!(f, "unknown event tag {tag} in record at byte {offset}")
            }
            DecodeError::Utf8 { offset } => {
                write!(f, "invalid UTF-8 in record at byte {offset}")
            }
            DecodeError::Payload { offset } => {
                write!(f, "malformed payload in record at byte {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl DecodeError {
    /// True when the error is consistent with a write that stopped
    /// mid-record (a crash), as opposed to bytes damaged in place.
    /// Recovery may truncate at a torn tail; damage demands attention.
    pub fn is_torn_tail(&self) -> bool {
        matches!(self, DecodeError::Truncated { .. })
    }
}

/// FNV-1a, 32-bit — cheap, allocation-free, and strong enough to catch
/// the single-bit flips and torn boundaries the fault harness injects.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

impl Event {
    /// Append this event's framed record (header + payload) to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(32);
        match self {
            Event::Query { terms, freq } => {
                payload.push(TAG_QUERY);
                payload.extend_from_slice(&freq.to_le_bytes());
                payload.extend_from_slice(&(terms.len() as u32).to_le_bytes());
                for t in terms {
                    push_str(&mut payload, t);
                }
            }
            Event::Click {
                story,
                surface,
                views,
                clicks,
            } => {
                payload.push(TAG_CLICK);
                payload.extend_from_slice(&story.to_le_bytes());
                payload.extend_from_slice(&views.to_le_bytes());
                payload.extend_from_slice(&clicks.to_le_bytes());
                push_str(&mut payload, surface);
            }
            Event::RankedClick {
                story,
                surface,
                rank,
                views,
                clicks,
            } => {
                payload.push(TAG_RANKED_CLICK);
                payload.extend_from_slice(&story.to_le_bytes());
                payload.extend_from_slice(&rank.to_le_bytes());
                payload.extend_from_slice(&views.to_le_bytes());
                payload.extend_from_slice(&clicks.to_le_bytes());
                push_str(&mut payload, surface);
            }
        }
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
    }

    /// The framed record for this event alone.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }
}

/// A validating cursor over one payload.
struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Byte offset of the whole record (for error reporting).
    record_offset: usize,
}

impl<'a> PayloadReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Payload {
            offset: self.record_offset,
        })?;
        if end > self.bytes.len() {
            return Err(DecodeError::Payload {
                offset: self.record_offset,
            });
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Utf8 {
            offset: self.record_offset,
        })
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn decode_payload(payload: &[u8], record_offset: usize) -> Result<Event, DecodeError> {
    let mut r = PayloadReader {
        bytes: payload,
        pos: 0,
        record_offset,
    };
    let tag = r.take(1)?[0];
    let event = match tag {
        TAG_QUERY => {
            let freq = r.u64()?;
            let n = r.u32()? as usize;
            // A term count beyond the payload's own capacity is corrupt;
            // reject before reserving (each term costs >= 4 bytes).
            if n > payload.len() / 4 + 1 {
                return Err(DecodeError::Payload {
                    offset: record_offset,
                });
            }
            let mut terms = Vec::with_capacity(n);
            for _ in 0..n {
                terms.push(r.string()?);
            }
            Event::Query { terms, freq }
        }
        TAG_CLICK => {
            let story = r.u64()?;
            let views = r.u64()?;
            let clicks = r.u64()?;
            let surface = r.string()?;
            Event::Click {
                story,
                surface,
                views,
                clicks,
            }
        }
        TAG_RANKED_CLICK => {
            let story = r.u64()?;
            let rank = r.u32()?;
            let views = r.u64()?;
            let clicks = r.u64()?;
            let surface = r.string()?;
            Event::RankedClick {
                story,
                surface,
                rank,
                views,
                clicks,
            }
        }
        tag => {
            return Err(DecodeError::UnknownTag {
                offset: record_offset,
                tag,
            })
        }
    };
    if !r.finished() {
        return Err(DecodeError::Payload {
            offset: record_offset,
        });
    }
    Ok(event)
}

/// Decode the record starting at `offset`, returning the event and the
/// offset of the next record.
pub fn decode_record(buf: &[u8], offset: usize) -> Result<(Event, usize), DecodeError> {
    let header_end = offset
        .checked_add(8)
        .ok_or(DecodeError::Truncated { offset })?;
    if header_end > buf.len() {
        return Err(DecodeError::Truncated { offset });
    }
    let len = u32::from_le_bytes([
        buf[offset],
        buf[offset + 1],
        buf[offset + 2],
        buf[offset + 3],
    ]);
    if len > MAX_RECORD_BYTES {
        return Err(DecodeError::Oversized { offset, len });
    }
    let want = u32::from_le_bytes([
        buf[offset + 4],
        buf[offset + 5],
        buf[offset + 6],
        buf[offset + 7],
    ]);
    let payload_end = header_end
        .checked_add(len as usize)
        .ok_or(DecodeError::Truncated { offset })?;
    if payload_end > buf.len() {
        return Err(DecodeError::Truncated { offset });
    }
    let payload = &buf[header_end..payload_end];
    if fnv1a32(payload) != want {
        return Err(DecodeError::Checksum { offset });
    }
    let event = decode_payload(payload, offset)?;
    Ok((event, payload_end))
}

/// Decode every record in `buf`. Fails on the first invalid record —
/// sealed segments are immutable, so any defect is corruption, not a
/// crash artifact.
pub fn decode_all(buf: &[u8]) -> Result<Vec<Event>, DecodeError> {
    let mut events = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        let (event, next) = decode_record(buf, pos)?;
        events.push(event);
        pos = next;
    }
    Ok(events)
}

/// Recovery decode for an *unsealed* tail file: the longest valid
/// prefix of records, plus the byte length of that prefix. A torn final
/// record is silently dropped (that is exactly what a crash between two
/// `write(2)` calls leaves behind); a mid-buffer defect still stops the
/// scan at the last valid record, so earlier records are never
/// corrupted by a bad tail.
pub fn decode_valid_prefix(buf: &[u8]) -> (Vec<Event>, usize) {
    let mut events = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        match decode_record(buf, pos) {
            Ok((event, next)) => {
                events.push(event);
                pos = next;
            }
            Err(_) => break,
        }
    }
    (events, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Query {
                terms: vec!["solar".into(), "flares".into()],
                freq: 7,
            },
            Event::Click {
                story: 42,
                surface: "solar flares".into(),
                views: 1000,
                clicks: 31,
            },
            Event::Query {
                terms: vec![],
                freq: 0,
            },
            Event::Click {
                story: u64::MAX,
                surface: String::new(),
                views: 0,
                clicks: u64::MAX,
            },
            Event::RankedClick {
                story: 42,
                surface: "solar flares".into(),
                rank: 3,
                views: 1000,
                clicks: 9,
            },
            Event::RankedClick {
                story: 0,
                surface: String::new(),
                rank: u32::MAX,
                views: u64::MAX,
                clicks: 0,
            },
        ]
    }

    #[test]
    fn roundtrip_all_kinds() {
        let events = sample_events();
        let mut buf = Vec::new();
        for e in &events {
            e.encode_into(&mut buf);
        }
        assert_eq!(decode_all(&buf).expect("decode"), events);
    }

    #[test]
    fn torn_tail_is_dropped_earlier_records_survive() {
        let events = sample_events();
        let mut buf = Vec::new();
        for e in &events {
            e.encode_into(&mut buf);
        }
        let intact = buf.len();
        // Every strict prefix decodes to a prefix of the event list.
        for cut in 0..intact {
            let (got, valid_len) = decode_valid_prefix(&buf[..cut]);
            assert!(valid_len <= cut);
            assert_eq!(got, events[..got.len()], "cut at {cut}");
            assert!(got.len() < events.len(), "cut at {cut} kept everything");
        }
        let (all, len) = decode_valid_prefix(&buf);
        assert_eq!(all, events);
        assert_eq!(len, intact);
    }

    #[test]
    fn bit_flip_is_a_checksum_error_not_a_panic() {
        let e = Event::Click {
            story: 3,
            surface: "markets".into(),
            views: 500,
            clicks: 12,
        };
        let clean = e.encode();
        for byte in 8..clean.len() {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[byte] ^= 1 << bit;
                let err = decode_all(&buf).expect_err("flip must be detected");
                assert!(
                    matches!(err, DecodeError::Checksum { offset: 0 }),
                    "byte {byte} bit {bit}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn ranked_click_bit_flip_detected() {
        let e = Event::RankedClick {
            story: 3,
            surface: "markets".into(),
            rank: 7,
            views: 500,
            clicks: 12,
        };
        let clean = e.encode();
        for byte in 8..clean.len() {
            let mut buf = clean.clone();
            buf[byte] ^= 0x10;
            let err = decode_all(&buf).expect_err("flip must be detected");
            assert!(
                matches!(err, DecodeError::Checksum { offset: 0 }),
                "byte {byte}: {err:?}"
            );
        }
    }

    #[test]
    fn header_flips_never_panic() {
        let e = Event::Query {
            terms: vec!["oil".into()],
            freq: 2,
        };
        let clean = e.encode();
        for byte in 0..8 {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[byte] ^= 1 << bit;
                // Any typed error is acceptable; decoding must not
                // panic or over-allocate.
                let _ = decode_all(&buf);
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_RECORD_BYTES + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = decode_record(&buf, 0).expect_err("oversized");
        assert!(matches!(err, DecodeError::Oversized { .. }));
    }

    #[test]
    fn unknown_tag_rejected() {
        let payload = [9u8, 0, 0, 0];
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let err = decode_all(&buf).expect_err("tag 9");
        assert_eq!(err, DecodeError::UnknownTag { offset: 0, tag: 9 });
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut payload = vec![TAG_QUERY];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.push(0xEE); // one byte beyond the declared fields
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let err = decode_all(&buf).expect_err("trailing bytes");
        assert_eq!(err, DecodeError::Payload { offset: 0 });
    }

    #[test]
    fn error_messages_name_the_defect_and_offset() {
        assert_eq!(
            DecodeError::Truncated { offset: 12 }.to_string(),
            "truncated record at byte 12"
        );
        assert!(DecodeError::Checksum { offset: 4 }
            .to_string()
            .contains("checksum"));
        assert!(DecodeError::Truncated { offset: 0 }.is_torn_tail());
        assert!(!DecodeError::Checksum { offset: 0 }.is_torn_tail());
    }
}
