//! Property-based tests for the text substrate.

use ctxrank_text::{normalize_term, paragraphs, sentences, stem, strip_html, tokenize, windows};
use proptest::prelude::*;

proptest! {
    /// Tokenizer spans always index into the input on char boundaries
    /// and reproduce the token text.
    #[test]
    fn tokenize_spans_are_valid(text in "\\PC{0,400}") {
        for t in tokenize(&text) {
            prop_assert!(t.start < t.end);
            prop_assert!(text.is_char_boundary(t.start));
            prop_assert!(text.is_char_boundary(t.end));
            prop_assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    /// Token spans are strictly increasing and non-overlapping.
    #[test]
    fn tokenize_spans_ordered(text in "\\PC{0,400}") {
        let toks = tokenize(&text);
        for w in toks.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// Normalization is idempotent.
    #[test]
    fn normalize_idempotent(term in "\\PC{0,40}") {
        let once = normalize_term(&term);
        prop_assert_eq!(normalize_term(&once), once.clone());
    }

    /// The stemmer never panics, never grows a lower-case ASCII word
    /// (beyond the +e restorations of step 1b), and always emits
    /// lower-case ASCII. (Note: the Porter algorithm is famously *not*
    /// idempotent in general — e.g. artificial inputs like "ubee" — so
    /// idempotence is only asserted on the curated vocabulary in the
    /// unit tests.)
    #[test]
    fn stem_contracts(word in "[a-z]{1,24}") {
        let s = stem(&word);
        prop_assert!(s.len() <= word.len() + 1, "stem grew: {} -> {}", word, s);
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        prop_assert!(!s.is_empty());
    }

    /// Arbitrary input never panics the stemmer.
    #[test]
    fn stem_total(word in "\\PC{0,32}") {
        let _ = stem(&word);
    }

    /// Sentence spans lie within the text, are ordered, and non-empty.
    #[test]
    fn sentence_spans_valid(text in "\\PC{0,500}") {
        let spans = sentences(&text);
        for s in &spans {
            prop_assert!(s.start <= s.end && s.end <= text.len());
            prop_assert!(text.is_char_boundary(s.start) && text.is_char_boundary(s.end));
            prop_assert!(!s.of(&text).trim().is_empty());
        }
        for w in spans.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// Paragraph detection has the same span contracts.
    #[test]
    fn paragraph_spans_valid(text in "\\PC{0,500}") {
        for p in paragraphs(&text) {
            prop_assert!(p.start <= p.end && p.end <= text.len());
            prop_assert!(text.is_char_boundary(p.start) && text.is_char_boundary(p.end));
        }
    }

    /// HTML stripping never panics and never leaves well-formed simple
    /// tags behind.
    #[test]
    fn strip_html_total(text in "\\PC{0,300}") {
        let out = strip_html(&text);
        prop_assert!(!out.contains("<p>"));
        prop_assert!(!out.contains("</p>"));
    }

    /// Windows cover the whole text: first starts at 0, last ends at the
    /// end, and consecutive windows overlap.
    #[test]
    fn windows_cover(words in prop::collection::vec("[a-z]{1,10}", 1..400),
                     size in 40usize..200, overlap_frac in 1usize..4) {
        let text = words.join(" ");
        let overlap = size * overlap_frac / 10; // < size
        let ws = windows(&text, size, overlap);
        prop_assert!(!ws.is_empty());
        prop_assert_eq!(ws[0].start, 0);
        prop_assert_eq!(ws.last().expect("nonempty").end, text.len());
        for pair in ws.windows(2) {
            prop_assert!(pair[1].start < pair[0].end, "windows must overlap");
            prop_assert!(text.is_char_boundary(pair[1].start));
        }
    }
}

/// The stemmer agrees with the classic Porter fixture on a fixed list —
/// kept as a regular test here so the property suite also guards the
/// reference behaviour.
#[test]
fn porter_fixture_spot_checks() {
    for (w, s) in [
        ("caresses", "caress"),
        ("flies", "fli"),
        ("dies", "di"),
        ("mules", "mule"),
        ("denied", "deni"),
        ("died", "di"),
        ("agreed", "agre"),
        ("owned", "own"),
        ("humbled", "humbl"),
        ("sized", "size"),
        ("meeting", "meet"),
        ("stating", "state"),
        ("siezing", "siez"),
        ("itemization", "item"),
        ("sensational", "sensat"),
        ("traditional", "tradit"),
        ("reference", "refer"),
        ("colonizer", "colon"),
        ("plotted", "plot"),
    ] {
        assert_eq!(stem(w), s, "stem({w})");
    }
}
