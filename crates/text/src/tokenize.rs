//! Offset-preserving tokenizer and term normalization.
//!
//! Tokens carry their byte offsets into the original document so that the
//! entity-detection pipeline can annotate spans in place (the Contextual
//! Shortcuts platform turns detected spans into "intelligent hyperlinks",
//! §II). Tokenization is intentionally simple and deterministic: a token is
//! a maximal run of alphanumeric characters, possibly joined by single
//! internal `'`, `-`, `.`, or `_` characters (so `don't`, `U.S.`, `e-mail`
//! and `v3m_silver` each stay one token).

/// A single token with its byte span in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The raw token text, exactly as it appears in the source.
    pub text: &'a str,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl<'a> Token<'a> {
    /// Length of the token in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the token is empty (never produced by [`tokenize`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Characters allowed to join two alphanumeric runs inside one token.
fn is_joiner(c: char) -> bool {
    matches!(c, '\'' | '-' | '.' | '_' | '@' | '+')
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric()
}

/// Split `text` into [`Token`]s, preserving byte offsets.
///
/// Guarantees:
/// * every returned span lies on `char` boundaries of `text`,
/// * spans are non-overlapping and strictly increasing,
/// * `&text[t.start..t.end] == t.text` for every token.
pub fn tokenize(text: &str) -> Vec<Token<'_>> {
    let mut out = Vec::new();
    let mut chars = text.char_indices().peekable();

    while let Some(&(start, c)) = chars.peek() {
        if !is_word_char(c) {
            chars.next();
            continue;
        }
        // Consume a word: alnum runs joined by single joiner chars that are
        // followed by another alnum char.
        let mut end = start;
        while let Some(&(i, c)) = chars.peek() {
            if is_word_char(c) {
                end = i + c.len_utf8();
                chars.next();
            } else if is_joiner(c) {
                // Look ahead one: the joiner must be followed by a word char.
                let mut ahead = chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&(_, nc)) if is_word_char(nc) => {
                        end = i + c.len_utf8();
                        chars.next();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        out.push(Token {
            text: &text[start..end],
            start,
            end,
        });
    }
    out
}

/// Tokenize and return just the normalized term strings (lower-cased,
/// punctuation-trimmed), dropping tokens that normalize to nothing.
pub fn tokenize_terms(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter_map(|t| {
            let n = normalize_term(t.text);
            if n.is_empty() {
                None
            } else {
                Some(n)
            }
        })
        .collect()
}

/// Normalize one term: lower-case it and strip surrounding punctuation
/// (including joiners that survived tokenization at the edges, e.g. the
/// trailing `.` of a sentence-final abbreviation is already excluded by the
/// tokenizer, but callers may pass raw strings).
pub fn normalize_term(term: &str) -> String {
    term.trim_matches(|c: char| !c.is_alphanumeric())
        .to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(s: &str) -> Vec<&str> {
        tokenize(s).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn simple_words() {
        assert_eq!(texts("hello world"), vec!["hello", "world"]);
    }

    #[test]
    fn punctuation_separates() {
        assert_eq!(texts("a,b;c!d?e"), vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn internal_apostrophe_kept() {
        assert_eq!(texts("don't stop"), vec!["don't", "stop"]);
    }

    #[test]
    fn internal_hyphen_kept() {
        assert_eq!(texts("e-mail me"), vec!["e-mail", "me"]);
    }

    #[test]
    fn trailing_joiner_not_consumed() {
        // Sentence-final period is not part of the token.
        assert_eq!(texts("end."), vec!["end"]);
        assert_eq!(texts("wait- what"), vec!["wait", "what"]);
    }

    #[test]
    fn abbreviation_periods_kept() {
        assert_eq!(texts("the U.S. army"), vec!["the", "U.S", "army"]);
    }

    #[test]
    fn email_stays_single_token() {
        assert_eq!(
            texts("mail uirmak@yahoo-inc.com now"),
            vec!["mail", "uirmak@yahoo-inc.com", "now"]
        );
    }

    #[test]
    fn offsets_roundtrip() {
        let s = "President Bush's position, per Sen. Clinton!";
        for t in tokenize(s) {
            assert_eq!(&s[t.start..t.end], t.text);
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn unicode_words() {
        let s = "caf\u{e9} na\u{ef}ve \u{4e2d}\u{6587}";
        let toks = texts(s);
        assert_eq!(toks, vec!["caf\u{e9}", "na\u{ef}ve", "\u{4e2d}\u{6587}"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn numbers_tokenized() {
        assert_eq!(
            texts("version 3.5 of 2008"),
            vec!["version", "3.5", "of", "2008"]
        );
    }

    #[test]
    fn normalize_trims_and_lowercases() {
        assert_eq!(normalize_term("...Hello!!"), "hello");
        assert_eq!(normalize_term("'tis"), "tis");
        assert_eq!(normalize_term("''"), "");
    }

    #[test]
    fn tokenize_terms_drops_empty() {
        assert_eq!(tokenize_terms("A B!"), vec!["a", "b"]);
    }
}
