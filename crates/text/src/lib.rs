//! Text-processing substrate for the `ctxrank` workspace.
//!
//! The Contextual Shortcuts platform (Irmak, von Brzeski & Kraft, ICDE 2009,
//! §II) runs a sequence of pre-processing steps over every input document:
//! HTML parsing, tokenization, sentence and paragraph boundary detection.
//! The relevance machinery additionally stems terms with the Porter (1980)
//! algorithm, lower-cases them and strips surrounding punctuation (§IV-B),
//! and the click-data evaluation partitions long documents into overlapping
//! character windows to control position bias (§V-A.1).
//!
//! This crate implements all of those building blocks with no external
//! dependencies:
//!
//! * [`tokenize`](mod@tokenize) — offset-preserving word tokenizer and term normalization,
//! * [`stem`](mod@stem) — a complete Porter stemmer,
//! * [`stopwords`] — the stop-word list used when building term vectors,
//! * [`html`] — a small, forgiving HTML tag/entity stripper,
//! * [`segment`] — sentence and paragraph boundary detection,
//! * [`window`] — overlapping character-window partitioning,
//! * [`intern`](mod@intern) — dense term-id interning,
//! * [`trie`](mod@trie) — id-sequence tries for phrase matching.

pub mod html;
pub mod intern;
pub mod segment;
pub mod stem;
pub mod stopwords;
pub mod tokenize;
pub mod trie;
pub mod window;

pub use html::strip_html;
pub use intern::{Interner, TermId};
pub use segment::{paragraphs, sentences, Span};
pub use stem::stem;
pub use stopwords::is_stopword;
pub use tokenize::{normalize_term, tokenize, tokenize_terms, Token};
pub use trie::{NodeId, PhraseTrie};
pub use window::{windows, Window};

/// Normalize, stop-filter and stem every token of `text`, returning the
/// processed terms in document order.
///
/// This is the canonical "bag of stemmed terms" used by the relevance miner
/// (§IV-B): lower-cased, punctuation-trimmed, stop-words removed, Porter
/// stemmed.
pub fn stemmed_terms(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter_map(|t| {
            let norm = normalize_term(t.text);
            if norm.is_empty() || is_stopword(&norm) {
                None
            } else {
                Some(stem(&norm))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stemmed_terms_pipeline() {
        let terms = stemmed_terms("The runners were running quickly!");
        assert_eq!(terms, vec!["runner", "run", "quickli"]);
    }

    #[test]
    fn stemmed_terms_empty_input() {
        assert!(stemmed_terms("").is_empty());
        assert!(stemmed_terms("the and of").is_empty());
    }
}
