//! Id-sequence tries for multi-pattern phrase matching.
//!
//! The annotation hot path must probe, at every token position, *all*
//! phrase lengths up to the dictionary maximum. Keyed on joined strings
//! that is one allocation + string hash per (position, length) pair; on
//! a [`PhraseTrie`] it is a single incremental descent: each token either
//! extends the current trie node or proves that no longer phrase can
//! match, and every node passed on the way down reports whether a
//! complete phrase ends there. Zero allocation, O(window) per position.
//!
//! Nodes store their children in a `TermId`-sorted vec (binary search);
//! the root fans out over the whole vocabulary, so it gets a dense
//! direct-index table instead.

use crate::intern::TermId;

/// Index of a trie node; [`PhraseTrie::ROOT`] is always valid.
pub type NodeId = u32;

#[derive(Debug, Clone)]
struct Node<V> {
    /// Child links sorted by term id.
    children: Vec<(TermId, NodeId)>,
    value: Option<V>,
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Self {
            children: Vec::new(),
            value: None,
        }
    }
}

/// A trie over [`TermId`] sequences, mapping complete phrases to values.
#[derive(Debug, Clone)]
pub struct PhraseTrie<V> {
    nodes: Vec<Node<V>>,
    /// Dense first-level table: `root_children[term] = node` (`NO_NODE`
    /// when the vocabulary term starts no phrase).
    root_children: Vec<NodeId>,
    len: usize,
}

const NO_NODE: NodeId = NodeId::MAX;

impl<V> Default for PhraseTrie<V> {
    fn default() -> Self {
        Self {
            nodes: vec![Node::default()],
            root_children: Vec::new(),
            len: 0,
        }
    }
}

impl<V> PhraseTrie<V> {
    /// The root node every descent starts from.
    pub const ROOT: NodeId = 0;

    /// Create an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored phrases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no phrase has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `seq` with `value`, returning the previous value if the
    /// phrase was already present. Empty sequences are rejected (`None`
    /// returned, nothing stored) — the root carries no value.
    pub fn insert(&mut self, seq: &[TermId], value: V) -> Option<V> {
        if seq.is_empty() {
            return None;
        }
        let mut node = Self::ROOT;
        for &t in seq {
            node = match self.child(node, t) {
                Some(n) => n,
                None => {
                    let next = self.nodes.len() as NodeId;
                    self.nodes.push(Node::default());
                    self.link(node, t, next);
                    next
                }
            };
        }
        let slot = &mut self.nodes[node as usize].value;
        let old = slot.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// One descent step: the child of `node` along `t`, if any.
    #[inline]
    pub fn step(&self, node: NodeId, t: TermId) -> Option<NodeId> {
        self.child(node, t)
    }

    /// The value stored at `node`, if a phrase ends there.
    #[inline]
    pub fn value(&self, node: NodeId) -> Option<&V> {
        self.nodes[node as usize].value.as_ref()
    }

    /// Full-sequence lookup (a convenience over [`Self::step`]).
    pub fn get(&self, seq: &[TermId]) -> Option<&V> {
        if seq.is_empty() {
            return None;
        }
        let mut node = Self::ROOT;
        for &t in seq {
            node = self.child(node, t)?;
        }
        self.value(node)
    }

    #[inline]
    fn child(&self, node: NodeId, t: TermId) -> Option<NodeId> {
        if node == Self::ROOT {
            match self.root_children.get(t.idx()) {
                Some(&n) if n != NO_NODE => Some(n),
                _ => None,
            }
        } else {
            let children = &self.nodes[node as usize].children;
            children
                .binary_search_by_key(&t, |&(id, _)| id)
                .ok()
                .map(|i| children[i].1)
        }
    }

    fn link(&mut self, node: NodeId, t: TermId, next: NodeId) {
        if node == Self::ROOT {
            if self.root_children.len() <= t.idx() {
                self.root_children.resize(t.idx() + 1, NO_NODE);
            }
            self.root_children[t.idx()] = next;
        } else {
            let children = &mut self.nodes[node as usize].children;
            match children.binary_search_by_key(&t, |&(id, _)| id) {
                Ok(_) => unreachable!("link called for existing child"),
                Err(i) => children.insert(i, (t, next)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(seq: &[u32]) -> Vec<TermId> {
        seq.iter().map(|&i| TermId(i)).collect()
    }

    #[test]
    fn insert_and_get() {
        let mut t = PhraseTrie::new();
        assert_eq!(t.insert(&ids(&[1, 2]), "a"), None);
        assert_eq!(t.insert(&ids(&[1]), "b"), None);
        assert_eq!(t.insert(&ids(&[1, 2, 3]), "c"), None);
        assert_eq!(t.get(&ids(&[1, 2])), Some(&"a"));
        assert_eq!(t.get(&ids(&[1])), Some(&"b"));
        assert_eq!(t.get(&ids(&[1, 2, 3])), Some(&"c"));
        assert_eq!(t.get(&ids(&[2])), None);
        assert_eq!(t.get(&ids(&[1, 3])), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn replace_returns_old() {
        let mut t = PhraseTrie::new();
        t.insert(&ids(&[5]), 1);
        assert_eq!(t.insert(&ids(&[5]), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&ids(&[5])), Some(&2));
    }

    #[test]
    fn prefix_without_value_is_not_a_match() {
        let mut t = PhraseTrie::new();
        t.insert(&ids(&[1, 2, 3]), ());
        assert_eq!(t.get(&ids(&[1, 2])), None);
        // But the walk reaches the interior node.
        let n1 = t.step(PhraseTrie::<()>::ROOT, TermId(1)).unwrap();
        let n2 = t.step(n1, TermId(2)).unwrap();
        assert!(t.value(n2).is_none());
        let n3 = t.step(n2, TermId(3)).unwrap();
        assert!(t.value(n3).is_some());
    }

    #[test]
    fn empty_sequence_rejected() {
        let mut t: PhraseTrie<u8> = PhraseTrie::new();
        assert_eq!(t.insert(&[], 1), None);
        assert!(t.is_empty());
        assert_eq!(t.get(&[]), None);
    }

    #[test]
    fn sparse_high_ids() {
        let mut t = PhraseTrie::new();
        t.insert(&ids(&[1000, 3]), "far");
        assert_eq!(t.get(&ids(&[1000, 3])), Some(&"far"));
        assert_eq!(t.get(&ids(&[999])), None);
        assert_eq!(t.step(PhraseTrie::<&str>::ROOT, TermId(2000)), None);
    }
}
