//! A small, forgiving HTML stripper.
//!
//! The first pre-processing step of the Contextual Shortcuts pipeline is
//! HTML parsing (§II): published news pages arrive as markup and the
//! detectors operate over plain text. We do not need a full DOM — only a
//! lossless-enough text extraction that (a) removes tags, (b) drops
//! `<script>`/`<style>` content entirely, (c) decodes the common entities,
//! and (d) turns block-level boundaries into paragraph breaks so that the
//! downstream sentence/paragraph segmenter sees them.

/// Tags whose entire content is dropped.
const DROP_CONTENT: &[&str] = &["script", "style"];

/// Tags that imply a paragraph break in the extracted text.
const BLOCK_TAGS: &[&str] = &[
    "p",
    "div",
    "br",
    "li",
    "ul",
    "ol",
    "table",
    "tr",
    "h1",
    "h2",
    "h3",
    "h4",
    "h5",
    "h6",
    "blockquote",
    "pre",
    "hr",
    "section",
    "article",
    "header",
    "footer",
];

/// Strip HTML markup from `input`, returning plain text.
///
/// Block-level tags are replaced by `\n\n` so paragraph detection still
/// works; inline tags are replaced by nothing; a handful of common entities
/// (`&amp;` `&lt;` `&gt;` `&quot;` `&apos;` `&nbsp;` and numeric refs) are
/// decoded. Malformed markup never panics — an unterminated tag is treated
/// as text.
pub fn strip_html(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;

    while i < input.len() {
        match bytes[i] {
            b'<' => {
                match parse_tag(input, i) {
                    Some((name, is_close, end)) => {
                        let lname = name.to_ascii_lowercase();
                        if !is_close && DROP_CONTENT.contains(&lname.as_str()) {
                            // Skip to the matching close tag (or EOF).
                            i = skip_dropped(input, end, &lname);
                        } else {
                            if BLOCK_TAGS.contains(&lname.as_str()) {
                                push_para_break(&mut out);
                            }
                            i = end;
                        }
                    }
                    None => {
                        // Not a well-formed tag: emit the '<' literally.
                        out.push('<');
                        i += 1;
                    }
                }
            }
            b'&' => {
                let (decoded, end) = decode_entity(input, i);
                out.push_str(&decoded);
                i = end;
            }
            _ => {
                // Copy one whole char.
                let c = input[i..].chars().next().expect("in-bounds char");
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    while out.ends_with(['\n', ' ', '\t']) {
        out.pop();
    }
    out
}

/// Append a paragraph break, collapsing runs.
fn push_para_break(out: &mut String) {
    while out.ends_with(' ') || out.ends_with('\t') {
        out.pop();
    }
    if !out.is_empty() && !out.ends_with("\n\n") {
        while out.ends_with('\n') {
            out.pop();
        }
        out.push_str("\n\n");
    }
}

/// Try to parse a tag starting at `start` (which must be `<`). Returns the
/// tag name, whether it is a closing tag, and the byte offset just past the
/// closing `>`.
fn parse_tag(input: &str, start: usize) -> Option<(String, bool, usize)> {
    let rest = &input[start + 1..];
    // Comments: <!-- ... -->
    if let Some(body) = rest.strip_prefix("!--") {
        let close = body.find("-->")?;
        return Some((String::from("!comment"), false, start + 4 + close + 3));
    }
    let mut chars = rest.char_indices();
    let (mut name_start, first) = chars.next()?;
    let is_close = first == '/';
    if is_close {
        let (i, c) = chars.next()?;
        if !c.is_ascii_alphabetic() && c != '!' {
            return None;
        }
        name_start = i;
    } else if !first.is_ascii_alphabetic() && first != '!' {
        return None;
    }
    // Find the end of the name and then the closing '>'. A '>' inside a
    // quoted attribute value (`<a href="a>b">`) does not end the tag, so
    // the scan tracks the active quote character; an unterminated quote
    // means no closing '>' is ever found and the '<' falls back to text.
    let mut name_end = rest.len();
    let mut gt = None;
    let mut quote: Option<char> = None;
    for (i, c) in rest[name_start..].char_indices() {
        let abs = name_start + i;
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => {
                if c == '>' {
                    name_end = name_end.min(abs);
                    gt = Some(abs);
                    break;
                }
                if c == '"' || c == '\'' {
                    quote = Some(c);
                } else if c.is_whitespace() || c == '/' {
                    name_end = name_end.min(abs);
                }
            }
        }
    }
    let gt = gt?;
    let name = rest[name_start..name_end].to_string();
    if name.is_empty() {
        return None;
    }
    Some((name, is_close, start + 1 + gt + 1))
}

/// Skip everything up to (and including) `</name>`.
fn skip_dropped(input: &str, from: usize, name: &str) -> usize {
    let lower = input[from..].to_ascii_lowercase();
    let close = format!("</{name}");
    match lower.find(&close) {
        Some(rel) => {
            let at = from + rel;
            match input[at..].find('>') {
                Some(gt) => at + gt + 1,
                None => input.len(),
            }
        }
        None => input.len(),
    }
}

/// Decode the entity starting at `start` (which must be `&`). Returns the
/// decoded text and the offset just past the entity; an unknown or
/// malformed entity is passed through as a literal `&`.
fn decode_entity(input: &str, start: usize) -> (String, usize) {
    let rest = &input[start + 1..];
    let semi = match rest.find(';') {
        Some(i) if i <= 10 => i,
        _ => return ("&".to_string(), start + 1),
    };
    let body = &rest[..semi];
    let end = start + 1 + semi + 1;
    let decoded = match body {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        "nbsp" => Some(' '),
        _ => {
            if let Some(num) = body.strip_prefix('#') {
                let code = if let Some(hex) = num.strip_prefix(['x', 'X']) {
                    u32::from_str_radix(hex, 16).ok()
                } else {
                    num.parse::<u32>().ok()
                };
                code.and_then(char::from_u32)
            } else {
                None
            }
        }
    };
    match decoded {
        Some(c) => (c.to_string(), end),
        None => ("&".to_string(), start + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_inline_tags() {
        assert_eq!(strip_html("<b>bold</b> text"), "bold text");
    }

    #[test]
    fn block_tags_make_paragraphs() {
        let out = strip_html("<p>one</p><p>two</p>");
        assert_eq!(out, "one\n\ntwo");
    }

    #[test]
    fn drops_script_and_style() {
        let out = strip_html("a<script>var x = '<p>';</script>b<style>p{}</style>c");
        assert_eq!(out, "abc");
    }

    #[test]
    fn decodes_entities() {
        assert_eq!(
            strip_html("a &amp; b &lt;c&gt; &#65; &#x42;"),
            "a & b <c> A B"
        );
    }

    #[test]
    fn unknown_entity_passthrough() {
        assert_eq!(strip_html("AT&T; R&D"), "AT&T; R&D");
    }

    #[test]
    fn malformed_tag_is_text() {
        assert_eq!(strip_html("3 < 4 and 5 > 2"), "3 < 4 and 5 > 2");
    }

    #[test]
    fn unterminated_script_consumes_rest() {
        assert_eq!(strip_html("a<script>oops"), "a");
    }

    #[test]
    fn comments_removed() {
        assert_eq!(strip_html("a<!-- hidden <b> -->b"), "ab");
    }

    #[test]
    fn attributes_ignored() {
        assert_eq!(
            strip_html(r#"<a href="http://y.com" class="x">link</a>"#),
            "link"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(strip_html(""), "");
    }

    #[test]
    fn gt_inside_quoted_attribute_does_not_end_the_tag() {
        assert_eq!(
            strip_html(r#"<a href="/q?a>b" title='x > y'>link</a> tail"#),
            "link tail"
        );
    }

    #[test]
    fn unterminated_attribute_quote_falls_back_to_text() {
        // No unquoted '>' ever closes the tag, so the '<' is literal.
        assert_eq!(strip_html(r#"x <a href="oops>y"#), r#"x <a href="oops>y"#);
    }

    #[test]
    fn br_breaks() {
        assert_eq!(strip_html("one<br/>two"), "one\n\ntwo");
    }
}
