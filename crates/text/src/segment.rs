//! Sentence and paragraph boundary detection.
//!
//! The Contextual Shortcuts pre-processing pipeline performs "sentence, and
//! paragraph boundary detection" (§II) before the entity detectors run:
//! collision resolution and context extraction both need to know which
//! sentence a detected span belongs to.
//!
//! The segmenter is rule-based: sentence terminators are `.` `!` `?`
//! followed by whitespace and an upper-case/digit start, with an
//! abbreviation list preventing false splits ("Sen. Clinton" stays one
//! sentence). Paragraphs are separated by blank lines.

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// Extract the spanned slice of `text`.
    pub fn of<'a>(&self, text: &'a str) -> &'a str {
        &text[self.start..self.end]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Does this span contain byte offset `pos`?
    pub fn contains(&self, pos: usize) -> bool {
        self.start <= pos && pos < self.end
    }

    /// Do two spans overlap?
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Common abbreviations that do not terminate a sentence.
const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "prof", "sen", "rep", "gov", "gen", "lt", "col", "sgt", "capt", "st",
    "ave", "blvd", "dept", "univ", "assn", "inc", "ltd", "co", "corp", "vs", "etc", "jan", "feb",
    "mar", "apr", "jun", "jul", "aug", "sep", "sept", "oct", "nov", "dec", "e.g", "i.e", "u.s",
    "u.k", "a.m", "p.m", "no", "vol", "fig", "ca", "approx",
];

fn is_abbreviation(word: &str) -> bool {
    let w = word.to_ascii_lowercase();
    ABBREVIATIONS.contains(&w.as_str())
        || (w.len() == 1 && w.chars().all(|c| c.is_ascii_alphabetic()))
}

/// Split `text` into sentence [`Span`]s.
///
/// Leading/trailing whitespace is excluded from each span; empty sentences
/// are never produced. Paragraph breaks (`\n\n`) always end a sentence.
pub fn sentences(text: &str) -> Vec<Span> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0;

    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let terminator = matches!(b, b'.' | b'!' | b'?');
        let para_break = b == b'\n' && bytes.get(i + 1) == Some(&b'\n');

        if terminator {
            // Consume a run of terminators and closing quotes/brackets.
            let mut end = i + 1;
            while end < bytes.len()
                && matches!(bytes[end], b'.' | b'!' | b'?' | b'"' | b'\'' | b')' | b']')
            {
                end += 1;
            }
            // Must be followed by whitespace + sentence-initial char (or EOF).
            let after_ws = text[end..]
                .find(|c: char| !c.is_whitespace())
                .map(|o| end + o);
            let splits = match after_ws {
                None => true,
                Some(pos) => {
                    let next = text[pos..].chars().next().expect("non-ws char");
                    let had_ws = pos > end || end == bytes.len();
                    had_ws
                        && (next.is_uppercase() || next.is_numeric() || next == '"' || next == '\'')
                }
            };
            // Abbreviation check only applies to '.' terminators.
            let last_word_abbrev = b == b'.' && {
                let before = &text[start..i];
                let word = before
                    .rsplit(|c: char| c.is_whitespace())
                    .next()
                    .unwrap_or("");
                is_abbreviation(word.trim_matches(|c: char| !c.is_alphanumeric() && c != '.'))
            };
            if splits && !last_word_abbrev {
                push_trimmed(text, start, end, &mut out);
                start = end;
                i = end;
                continue;
            }
            i = end;
            continue;
        }

        if para_break {
            push_trimmed(text, start, i, &mut out);
            start = i;
        }
        // Advance one char.
        i += utf8_len(bytes[i]);
    }
    push_trimmed(text, start, text.len(), &mut out);
    out
}

/// Split `text` into paragraph [`Span`]s (separated by blank lines).
pub fn paragraphs(text: &str) -> Vec<Span> {
    let mut out = Vec::new();
    let mut start = 0;
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            // Count consecutive newlines (allowing interleaved spaces).
            let mut j = i + 1;
            let mut newlines = 1;
            while j < bytes.len()
                && (bytes[j] == b'\n' || bytes[j] == b' ' || bytes[j] == b'\r' || bytes[j] == b'\t')
            {
                if bytes[j] == b'\n' {
                    newlines += 1;
                }
                j += 1;
            }
            if newlines >= 2 {
                push_trimmed(text, start, i, &mut out);
                start = j;
                i = j;
                continue;
            }
        }
        i += utf8_len(bytes[i]);
    }
    push_trimmed(text, start, text.len(), &mut out);
    out
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Push `[start, end)` trimmed of surrounding whitespace; skip if empty.
fn push_trimmed(text: &str, start: usize, end: usize, out: &mut Vec<Span>) {
    if start >= end {
        return;
    }
    let slice = &text[start..end];
    let lead = slice.len() - slice.trim_start().len();
    let trail = slice.len() - slice.trim_end().len();
    let (s, e) = (start + lead, end - trail);
    if s < e {
        out.push(Span { start: s, end: e });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent_texts(text: &str) -> Vec<&str> {
        sentences(text)
            .into_iter()
            .map(|s| s.of(text))
            .collect::<Vec<_>>()
    }

    #[test]
    fn simple_sentences() {
        assert_eq!(
            sent_texts("First one. Second one! Third one?"),
            vec!["First one.", "Second one!", "Third one?"]
        );
    }

    #[test]
    fn abbreviation_does_not_split() {
        assert_eq!(
            sent_texts("New York Sen. Clinton argued. Obama replied."),
            vec!["New York Sen. Clinton argued.", "Obama replied."]
        );
    }

    #[test]
    fn initials_do_not_split() {
        assert_eq!(
            sent_texts("George W. Bush spoke. Then he left."),
            vec!["George W. Bush spoke.", "Then he left."]
        );
    }

    #[test]
    fn lowercase_continuation_does_not_split() {
        assert_eq!(
            sent_texts("The stock fell 3.5 percent. It recovered."),
            vec!["The stock fell 3.5 percent.", "It recovered."]
        );
    }

    #[test]
    fn paragraph_break_splits() {
        let text = "End of para\n\nNew para starts";
        assert_eq!(sent_texts(text), vec!["End of para", "New para starts"]);
    }

    #[test]
    fn spans_are_valid_and_ordered() {
        let text = "A b. C d! E f? G h.";
        let spans = sentences(text);
        for w in spans.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        for s in &spans {
            assert!(!s.of(text).trim().is_empty());
        }
    }

    #[test]
    fn paragraphs_basic() {
        let text = "one\ntwo\n\nthree\n\n\nfour";
        let paras: Vec<_> = paragraphs(text).into_iter().map(|s| s.of(text)).collect();
        assert_eq!(paras, vec!["one\ntwo", "three", "four"]);
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(sentences("").is_empty());
        assert!(paragraphs("").is_empty());
        assert!(sentences("   \n\n  ").is_empty());
    }

    #[test]
    fn quoted_sentence_end() {
        assert_eq!(
            sent_texts("He said \"stop.\" Then he left."),
            vec!["He said \"stop.\"", "Then he left."]
        );
    }

    #[test]
    fn span_helpers() {
        let s = Span { start: 2, end: 5 };
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(s.contains(2));
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert!(s.overlaps(&Span { start: 4, end: 9 }));
        assert!(!s.overlaps(&Span { start: 5, end: 9 }));
    }
}
