//! Term interning — the dense id substrate of the annotation hot path.
//!
//! §VI of the paper describes a "Global TID Table which simply maps a
//! given term to its TID"; the runtime framework (`ctxrank-framework`)
//! keeps its own 22-bit-capped table for the packed relevance stores.
//! This module is the build-time counterpart, shared by every crate that
//! keys data structures on term *sequences*: once terms are dense `u32`
//! ids, a phrase becomes a `&[TermId]` that can be hashed directly or
//! walked through a [`crate::trie::PhraseTrie`] with no `join(" ")`
//! allocation per probe.

use std::collections::HashMap;

/// A dense term id, valid within the [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a vector index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Maps terms to dense [`TermId`]s and back.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    ids: HashMap<Box<str>, TermId>,
    terms: Vec<Box<str>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its (possibly pre-existing) id. Ids are
    /// assigned densely in first-seen order.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        let boxed: Box<str> = term.into();
        self.ids.insert(boxed.clone(), id);
        self.terms.push(boxed);
        id
    }

    /// Look up a term without interning it.
    #[inline]
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Reverse lookup.
    #[inline]
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.idx()).map(|s| &**s)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate all interned terms in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, s)| (TermId(i as u32), &**s))
    }

    /// Map a term sequence to ids, `None` as soon as any term is
    /// unknown (a phrase with an unknown term cannot be present in any
    /// id-keyed structure built from this interner).
    pub fn ids_of(&self, terms: &[String]) -> Option<Vec<TermId>> {
        terms.iter().map(|t| self.get(t)).collect()
    }

    /// Map each token to its id, keeping unknown tokens as `None` — the
    /// per-document projection detectors scan instead of raw strings.
    pub fn map_tokens(&self, tokens: &[String]) -> Vec<Option<TermId>> {
        tokens.iter().map(|t| self.get(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_idempotent_and_dense() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), TermId(0));
        assert_eq!(i.intern("b"), TermId(1));
        assert_eq!(i.intern("a"), TermId(0));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn reverse_lookup() {
        let mut i = Interner::new();
        let id = i.intern("warming");
        assert_eq!(i.term(id), Some("warming"));
        assert_eq!(i.term(TermId(7)), None);
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert_eq!(i.get("x"), None);
        assert!(i.is_empty());
    }

    #[test]
    fn ids_of_fails_on_unknown() {
        let mut i = Interner::new();
        i.intern("a");
        assert!(i.ids_of(&["a".into()]).is_some());
        assert!(i.ids_of(&["a".into(), "b".into()]).is_none());
        assert_eq!(i.ids_of(&[]), Some(vec![]));
    }

    #[test]
    fn map_tokens_keeps_unknowns() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let mapped = i.map_tokens(&["a".into(), "zzz".into()]);
        assert_eq!(mapped, vec![Some(a), None]);
    }
}
