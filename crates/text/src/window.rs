//! Overlapping character-window partitioning.
//!
//! To control the position bias inherent in click data ("the first entities
//! in a document may get an unfair share of user attention", §V-A.1) the
//! paper partitions large documents into windows of 2500 characters with a
//! 500-character overlap between consecutive windows, "so that the
//! neighboring concepts are not separated".
//!
//! Window boundaries are snapped back to the nearest whitespace so tokens
//! are never cut in half; byte offsets always land on `char` boundaries.

/// The window size the paper uses (characters).
pub const PAPER_WINDOW_SIZE: usize = 2500;
/// The overlap the paper uses (characters).
pub const PAPER_OVERLAP: usize = 500;

/// One document window: a byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    pub start: usize,
    pub end: usize,
}

impl Window {
    /// Extract the window's text.
    pub fn of<'a>(&self, text: &'a str) -> &'a str {
        &text[self.start..self.end]
    }

    /// Does the window contain byte offset `pos`?
    pub fn contains(&self, pos: usize) -> bool {
        self.start <= pos && pos < self.end
    }
}

/// Partition `text` into windows of at most `size` characters with
/// `overlap` characters shared between consecutive windows.
///
/// * A text shorter than `size` produces exactly one window.
/// * Each new window starts `size - overlap` characters after the previous
///   one (snapped to a whitespace boundary where possible).
/// * Every byte of the input is covered by at least one window.
///
/// # Panics
/// Panics if `overlap >= size` or `size == 0`.
pub fn windows(text: &str, size: usize, overlap: usize) -> Vec<Window> {
    assert!(size > 0, "window size must be positive");
    assert!(
        overlap < size,
        "overlap must be smaller than the window size"
    );

    let n_chars = text.chars().count();
    if n_chars <= size {
        return vec![Window {
            start: 0,
            end: text.len(),
        }];
    }

    // Precompute byte offset of each char index (plus the end sentinel).
    let offsets: Vec<usize> = text
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(text.len()))
        .collect();

    let stride = size - overlap;
    let mut out = Vec::new();
    let mut start_char = 0;
    loop {
        let end_char = (start_char + size).min(n_chars);
        let start = snap_to_whitespace(text, &offsets, start_char, false);
        let end = snap_to_whitespace(text, &offsets, end_char, true);
        let window = Window {
            start,
            end: end.max(start),
        };
        if window.start < window.end {
            out.push(window);
        }
        if end_char >= n_chars {
            break;
        }
        start_char += stride;
    }
    // Make sure the tail is fully covered even after snapping.
    if let Some(last) = out.last_mut() {
        if last.end < text.len() {
            last.end = text.len();
        }
    }
    out
}

/// Partition with the paper's parameters (2500-char windows, 500 overlap).
pub fn paper_windows(text: &str) -> Vec<Window> {
    windows(text, PAPER_WINDOW_SIZE, PAPER_OVERLAP)
}

/// Snap a char index to a nearby whitespace boundary (searching forward up
/// to 40 chars); returns a byte offset. When `backward` the search extends
/// the window (for the end edge) so no token is truncated.
fn snap_to_whitespace(text: &str, offsets: &[usize], char_idx: usize, extend: bool) -> usize {
    let n_chars = offsets.len() - 1;
    if char_idx == 0 || char_idx >= n_chars {
        return offsets[char_idx.min(n_chars)];
    }
    let limit = 40;
    if extend {
        // Move forward until whitespace (token finishes).
        for &b in &offsets[char_idx..(char_idx + limit).min(n_chars)] {
            let c = text[b..].chars().next().expect("valid offset");
            if c.is_whitespace() {
                return b;
            }
        }
    } else {
        // Move backward until just after whitespace (token starts cleanly).
        for ci in (char_idx.saturating_sub(limit)..=char_idx).rev() {
            if ci == 0 {
                return 0;
            }
            let prev = offsets[ci - 1];
            let c = text[prev..].chars().next().expect("valid offset");
            if c.is_whitespace() {
                return offsets[ci];
            }
        }
    }
    offsets[char_idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_text(n_words: usize) -> String {
        (0..n_words)
            .map(|i| format!("word{i}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn short_text_single_window() {
        let text = "short document";
        let w = windows(text, 2500, 500);
        assert_eq!(
            w,
            vec![Window {
                start: 0,
                end: text.len()
            }]
        );
    }

    #[test]
    fn exact_size_single_window() {
        let text = "x".repeat(100);
        assert_eq!(windows(&text, 100, 10).len(), 1);
    }

    #[test]
    fn long_text_multiple_windows() {
        let text = word_text(2000); // ~ 13k chars
        let ws = windows(&text, 2500, 500);
        assert!(ws.len() > 3, "expected several windows, got {}", ws.len());
    }

    #[test]
    fn full_coverage() {
        let text = word_text(1500);
        let ws = windows(&text, 1000, 200);
        assert_eq!(ws[0].start, 0);
        assert_eq!(ws.last().unwrap().end, text.len());
        // Every window starts before the previous one ends (overlap).
        for pair in ws.windows(2) {
            assert!(pair[1].start < pair[0].end, "windows must overlap");
        }
    }

    #[test]
    fn windows_do_not_cut_words() {
        let text = word_text(1500);
        for w in windows(&text, 1000, 200) {
            // Window edges are clean: no partial "wordN" fragments at the
            // start (starts exactly at a word boundary).
            assert!(
                w.start == 0 || text.as_bytes()[w.start - 1] == b' ',
                "window starts mid-word at {}",
                w.start
            );
        }
    }

    #[test]
    fn paper_parameters() {
        assert_eq!(PAPER_WINDOW_SIZE, 2500);
        assert_eq!(PAPER_OVERLAP, 500);
        let text = word_text(1000);
        assert!(!paper_windows(&text).is_empty());
    }

    #[test]
    fn unicode_boundaries_safe() {
        let text = "\u{4e2d}\u{6587} ".repeat(2000);
        for w in windows(&text, 500, 100) {
            // Slicing must not panic on char boundaries.
            let _ = w.of(&text);
        }
    }

    #[test]
    #[should_panic]
    fn overlap_must_be_smaller() {
        windows("abc", 10, 10);
    }
}
