//! A complete implementation of the Porter stemming algorithm.
//!
//! M. Porter, "An algorithm for suffix stripping", *Program* 14(3), 1980 —
//! reference \[17\] of the paper. The relevance-keyword miner works entirely
//! on stemmed terms (§IV-B), and the production framework runs a Stemmer
//! component over every incoming document before ranking (§VI), so this is
//! on the hot path and is written allocation-free except for the final
//! output string.
//!
//! The implementation follows the canonical description: words are viewed
//! as `[C](VC)^m[V]`, the *measure* `m` gates most rules, and five steps of
//! suffix rewrites are applied in order.

/// Stem a single lower-case word with the Porter algorithm.
///
/// Words shorter than three characters, or containing non-ASCII-alphabetic
/// characters, are returned unchanged (the classic algorithm is defined
/// over ASCII letters; Contextual Shortcuts normalizes terms before
/// stemming).
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
        k: word.len(),
    };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    s.b.truncate(s.k);
    // SAFETY-free: input was ASCII, all rewrites write ASCII.
    String::from_utf8(s.b).expect("porter stemmer produces ASCII")
}

struct Stemmer {
    /// Working buffer; only `b[..k]` is live.
    b: Vec<u8>,
    k: usize,
}

impl Stemmer {
    /// True if `b[i]` is a consonant, per Porter's definition ('y' is a
    /// consonant when preceded by a vowel position... precisely: 'y' is a
    /// consonant iff it is word-initial or preceded by a consonant).
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Porter measure of `b[..j+1]` (number of VC sequences).
    fn measure(&self, j: usize) -> usize {
        let mut n = 0;
        let mut i = 0;
        // Skip initial consonants.
        loop {
            if i > j {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            // Skip vowels.
            loop {
                if i > j {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            // Skip consonants.
            loop {
                if i > j {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// True if `b[..=j]` contains a vowel.
    fn vowel_in_stem(&self, j: usize) -> bool {
        (0..=j).any(|i| !self.cons(i))
    }

    /// True if `b[j-1..=j]` is a double consonant.
    fn double_cons(&self, j: usize) -> bool {
        j >= 1 && self.b[j] == self.b[j - 1] && self.cons(j)
    }

    /// True for consonant-vowel-consonant ending at `i`, where the final
    /// consonant is not `w`, `x` or `y` (used to detect e.g. `hop` in
    /// `hopping` so an `e` gets restored: `hop` + `e` rules).
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// Does the live word end with `suf`?
    fn ends(&self, suf: &str) -> bool {
        let s = suf.as_bytes();
        s.len() <= self.k && &self.b[self.k - s.len()..self.k] == s
    }

    /// Porter measure of the stem left when `suf` is removed; 0 when the
    /// suffix spans the whole word. Callers must have checked `ends(suf)`.
    fn stem_measure(&self, suf: &str) -> usize {
        if suf.len() >= self.k {
            0
        } else {
            self.measure(self.k - suf.len() - 1)
        }
    }

    /// Is there a vowel in the stem left when `suf` is removed?
    fn stem_has_vowel(&self, suf: &str) -> bool {
        suf.len() < self.k && self.vowel_in_stem(self.k - suf.len() - 1)
    }

    /// Replace the current suffix of length `old_len` with `new`.
    fn set_to(&mut self, old_len: usize, new: &str) {
        let base = self.k - old_len;
        self.b.truncate(base);
        self.b.extend_from_slice(new.as_bytes());
        self.k = base + new.len();
    }

    /// If the word ends with `suf` and the remaining stem has measure > 0,
    /// replace `suf` by `new` and return true (also returns true on a match
    /// whose condition failed, to emulate Porter's first-match semantics).
    fn rule(&mut self, suf: &str, new: &str) -> bool {
        if !self.ends(suf) {
            return false;
        }
        if self.stem_measure(suf) > 0 {
            self.set_to(suf.len(), new);
        }
        true
    }

    /// Step 1a (plurals) and 1b (-ed / -ing).
    fn step1ab(&mut self) {
        // Step 1a.
        if self.ends("sses") {
            self.set_to(4, "ss");
        } else if self.ends("ies") {
            self.set_to(3, "i");
        } else if self.ends("ss") {
            // leave as-is
        } else if self.ends("s") {
            self.set_to(1, "");
        }

        // Step 1b.
        if self.ends("eed") {
            if self.stem_measure("eed") > 0 {
                self.set_to(3, "ee");
            }
            return;
        }
        let removed = if self.ends("ed") && self.stem_has_vowel("ed") {
            self.set_to(2, "");
            true
        } else if self.ends("ing") && self.stem_has_vowel("ing") {
            self.set_to(3, "");
            true
        } else {
            false
        };
        if removed {
            if self.ends("at") || self.ends("bl") || self.ends("iz") {
                let k = self.k;
                self.b.truncate(k);
                self.b.push(b'e');
                self.k += 1;
            } else if self.double_cons(self.k - 1)
                && !matches!(self.b[self.k - 1], b'l' | b's' | b'z')
            {
                self.k -= 1;
                self.b.truncate(self.k);
            } else if self.measure(self.k - 1) == 1 && self.cvc(self.k - 1) {
                self.b.truncate(self.k);
                self.b.push(b'e');
                self.k += 1;
            }
        }
    }

    /// Step 1c: terminal `y` becomes `i` when there is a vowel in the stem.
    fn step1c(&mut self) {
        if self.ends("y") && self.vowel_in_stem(self.k - 2) {
            self.b[self.k - 1] = b'i';
        }
    }

    /// Step 2: double-suffix reductions (gated on m > 0).
    fn step2(&mut self) {
        if self.k < 3 {
            return;
        }
        // Dispatch on penultimate char as in Porter's reference code.
        let _ = match self.b[self.k - 2] {
            b'a' => self.rule("ational", "ate") || self.rule("tional", "tion"),
            b'c' => self.rule("enci", "ence") || self.rule("anci", "ance"),
            b'e' => self.rule("izer", "ize"),
            b'l' => {
                self.rule("bli", "ble")
                    || self.rule("alli", "al")
                    || self.rule("entli", "ent")
                    || self.rule("eli", "e")
                    || self.rule("ousli", "ous")
            }
            b'o' => {
                self.rule("ization", "ize") || self.rule("ation", "ate") || self.rule("ator", "ate")
            }
            b's' => {
                self.rule("alism", "al")
                    || self.rule("iveness", "ive")
                    || self.rule("fulness", "ful")
                    || self.rule("ousness", "ous")
            }
            b't' => {
                self.rule("aliti", "al") || self.rule("iviti", "ive") || self.rule("biliti", "ble")
            }
            b'g' => self.rule("logi", "log"),
            _ => false,
        };
    }

    /// Step 3: -ic-, -full, -ness etc.
    fn step3(&mut self) {
        let _ = match self.b[self.k - 1] {
            b'e' => self.rule("icate", "ic") || self.rule("ative", "") || self.rule("alize", "al"),
            b'i' => self.rule("iciti", "ic"),
            b'l' => self.rule("ical", "ic") || self.rule("ful", ""),
            b's' => self.rule("ness", ""),
            _ => false,
        };
    }

    /// Step 4: drop -ant, -ence etc. when m > 1.
    fn step4(&mut self) {
        if self.k < 3 {
            return;
        }
        let suffixes: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
            "ou", "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        for suf in suffixes {
            if self.ends(suf) {
                if *suf == "ion" {
                    // -ion only drops after s or t.
                    let after_s_or_t =
                        suf.len() < self.k && matches!(self.b[self.k - suf.len() - 1], b's' | b't');
                    if !after_s_or_t {
                        return;
                    }
                }
                if self.stem_measure(suf) > 1 {
                    self.set_to(suf.len(), "");
                }
                return;
            }
        }
    }

    /// Step 5a (drop final e when m > 1, or m == 1 and not *o) and
    /// step 5b (-ll → -l when m > 1).
    fn step5(&mut self) {
        if self.b[self.k - 1] == b'e' {
            let m = self.measure(self.k - 1);
            if m > 1 || (m == 1 && !self.cvc(self.k - 2)) {
                self.k -= 1;
                self.b.truncate(self.k);
            }
        }
        if self.b[self.k - 1] == b'l'
            && self.double_cons(self.k - 1)
            && self.measure(self.k - 1) > 1
        {
            self.k -= 1;
            self.b.truncate(self.k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic vocabulary spot-checks from Porter's paper and the reference
    /// test set.
    #[test]
    fn porter_reference_cases() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("at"), "at");
        assert_eq!(stem("by"), "by");
    }

    #[test]
    fn non_ascii_unchanged() {
        assert_eq!(stem("caf\u{e9}"), "caf\u{e9}");
        assert_eq!(stem("Upper"), "Upper");
        assert_eq!(stem("with-dash"), "with-dash");
    }

    #[test]
    fn news_domain_words() {
        assert_eq!(stem("elections"), "elect");
        assert_eq!(stem("political"), "polit");
        assert_eq!(stem("prisoners"), "prison");
        assert_eq!(stem("arguing"), "argu");
        assert_eq!(stem("releasing"), "releas");
    }

    #[test]
    fn idempotent_on_common_stems() {
        for w in ["run", "plaster", "motor", "hop", "depend", "adopt"] {
            assert_eq!(stem(&stem(w)), stem(w));
        }
    }
}
