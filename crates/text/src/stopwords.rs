//! Stop-word filtering.
//!
//! Stop-words are removed before term vectors are built (§II-B: "The
//! stop-words are removed and the remaining terms' weights are
//! normalized"). The list is the standard English function-word set used
//! by classic IR systems (articles, prepositions, pronouns, auxiliaries),
//! matched case-insensitively on normalized terms.

/// Sorted list of stop-words (lower-case). Binary-searched at runtime.
static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Is `term` (already lower-cased) a stop-word?
pub fn is_stopword(term: &str) -> bool {
    STOPWORDS.binary_search(&term).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{:?} >= {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn common_stopwords_detected() {
        for w in ["the", "and", "of", "a", "is", "with", "to"] {
            assert!(is_stopword(w), "{w} should be a stop-word");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["president", "cuba", "global", "warming", "jaguar"] {
            assert!(!is_stopword(w), "{w} should not be a stop-word");
        }
    }

    #[test]
    fn case_sensitivity_contract() {
        // Callers must lower-case first; upper-case input is not matched.
        assert!(!is_stopword("The"));
    }
}
