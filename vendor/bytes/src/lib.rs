//! Offline stand-in for the `bytes` crate: cursor-backed [`Bytes`] and
//! growable [`BytesMut`] with the little-endian accessor subset the
//! persistence layer uses. Reads past the end panic, as upstream does —
//! callers bound-check with [`Buf::remaining`] first.

/// Read-side cursor over an owned byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl Bytes {
    /// Remaining (unconsumed) bytes as a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

/// Read accessors.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn take_slice(&mut self, n: usize) -> &[u8];

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_slice(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_slice(8).try_into().expect("8 bytes"))
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn get_u8(&mut self) -> u8 {
        self.take_slice(1)[0]
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        Bytes::from(self.take_slice(len).to_vec())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take_slice(&mut self, n: usize) -> &[u8] {
        assert!(self.remaining() >= n, "buffer underflow");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

/// Write-side growable buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.data
    }
}

/// Write accessors.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut w = BytesMut::new();
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f64_le(1.5);
        w.put_u8(7);
        w.put_slice(b"tail");

        let mut r = Bytes::from(w.to_vec());
        assert_eq!(r.remaining(), 4 + 8 + 8 + 1 + 4);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.copy_to_bytes(4).to_vec(), b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r = Bytes::from(vec![1, 2]);
        r.get_u32_le();
    }
}
