//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Implements exactly the surface the workspace uses: the [`Rng`] and
//! [`SeedableRng`] traits and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed, with
//! full 64-bit state mixing, but a different stream than upstream's
//! ChaCha12 `StdRng`.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from the "standard" distribution (`Rng::random`).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = StandardSample::sample(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: f64 = StandardSample::sample(rng);
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`] so `R: Rng + ?Sized` bounds work as with upstream.
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_honored() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = r.random_range(3..17);
            assert!((3..17).contains(&i));
            let j = r.random_range(5usize..=5);
            assert_eq!(j, 5);
            let f = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn distribution_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.random_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
