//! Offline stand-in for `serde`.
//!
//! Instead of the visitor-based serializer architecture, values convert
//! to and from a JSON-shaped [`Content`] tree; `serde_json` (also
//! vendored) renders and parses that tree. The public trait names and
//! the derive re-export match upstream so call sites compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// The data model: everything a workspace type serializes into.
#[derive(Debug, Clone)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key-ordered map (insertion order preserved).
    Map(Vec<(String, Content)>),
}

/// Integers compare numerically across the `I64`/`U64` representations,
/// like upstream `serde_json::Number` (a parsed positive literal is
/// `U64`, a serialized `i64` is `I64`; they must still be equal).
impl PartialEq for Content {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Content::Null, Content::Null) => true,
            (Content::Bool(a), Content::Bool(b)) => a == b,
            (Content::I64(a), Content::I64(b)) => a == b,
            (Content::U64(a), Content::U64(b)) => a == b,
            (Content::I64(a), Content::U64(b)) | (Content::U64(b), Content::I64(a)) => {
                u64::try_from(*a).is_ok_and(|a| a == *b)
            }
            (Content::F64(a), Content::F64(b)) => a == b,
            (Content::Str(a), Content::Str(b)) => a == b,
            (Content::Seq(a), Content::Seq(b)) => a == b,
            (Content::Map(a), Content::Map(b)) => a == b,
            _ => false,
        }
    }
}

impl Content {
    /// Map lookup by key.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::I64(v) if v >= 0 => Some(v as u64),
            Content::U64(v) => Some(v),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            Content::F64(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable path + expectation.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c
                    .as_u64()
                    .ok_or_else(|| DeError::custom(format!("expected unsigned integer, got {c:?}")))?;
                <$t>::try_from(v).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c
                    .as_i64()
                    .ok_or_else(|| DeError::custom(format!("expected integer, got {c:?}")))?;
                <$t>::try_from(v).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {c:?}")))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {c:?}")))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::from_content(c)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match c {
                    Content::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected {LEN}-tuple, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_content(&self) -> Content {
        // Deterministic output: sort keys.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}
