//! Offline stand-in for `criterion`.
//!
//! Implements the subset this workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `throughput`, `Bencher::iter`
//! and `iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros. Instead of criterion's statistical engine it reports the
//! best-of-N mean iteration time (plus derived throughput) to stdout.
//! Tuning knobs: `CRITERION_TARGET_MS` (per-sample budget, default 60)
//! and `CRITERION_SAMPLES` (overrides `sample_size`, default 10).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How measured work scales, for MB/s or Melem/s reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// How `iter_batched` amortises setup; all variants behave the same here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Mean seconds per iteration for one measured sample.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    pub secs_per_iter: f64,
}

pub struct Bencher {
    target: Duration,
    samples: usize,
    /// Best (lowest) mean seconds/iter across samples.
    best: Option<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            target: Duration::from_millis(env_u64("CRITERION_TARGET_MS", 60)),
            samples,
            best: None,
        }
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: time one call, then size each sample to the budget.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_secs_f64() / once.as_secs_f64())
            .ceil()
            .max(1.0) as u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let per = start.elapsed().as_secs_f64() / iters as f64;
            self.best = Some(self.best.map_or(per, |b: f64| b.min(per)));
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_secs_f64() / once.as_secs_f64())
            .ceil()
            .max(1.0) as u64;
        for _ in 0..self.samples {
            // Setup cost is excluded by pre-building this sample's inputs.
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let per = start.elapsed().as_secs_f64() / iters as f64;
            self.best = Some(self.best.map_or(per, |b: f64| b.min(per)));
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(name: &str, secs: f64, throughput: Option<Throughput>) {
    let extra = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  ({:.2} MiB/s)", b as f64 / secs / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!("  ({:.2} Kelem/s)", n as f64 / secs / 1e3),
        None => String::new(),
    };
    println!("{name:<48} {:>12}/iter{extra}", fmt_time(secs));
}

fn run_bench(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) -> f64 {
    let samples = env_u64("CRITERION_SAMPLES", sample_size as u64).max(1) as usize;
    let mut b = Bencher::new(samples);
    f(&mut b);
    let secs = b.best.expect("bench closure never called Bencher::iter");
    report(name, secs, throughput);
    secs
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, 10, None, &mut f);
        self
    }

    /// Accepted for API compatibility; the shim has no global config.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_bench(&name, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_positive_time() {
        std::env::set_var("CRITERION_TARGET_MS", "1");
        let mut b = Bencher::new(2);
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.best.unwrap() > 0.0);
    }

    #[test]
    fn group_runs_benches() {
        std::env::set_var("CRITERION_TARGET_MS", "1");
        std::env::set_var("CRITERION_SAMPLES", "2");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| {
            b.iter(|| (0..50u64).sum::<u64>());
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
        g.finish();
    }
}
