//! Offline stand-in for `proptest`.
//!
//! Provides the `proptest!` / `prop_assert*` macros and the strategy
//! combinators the workspace's property tests use: numeric ranges,
//! tuples, `Just`, `any::<bool>()`, `prop::collection::{vec,
//! btree_set}`, and regex-subset string patterns like `"[a-z]{1,8}"` or
//! `"\\PC{0,400}"`. Differences from upstream: cases are generated from
//! a per-test deterministic seed, there is no shrinking, and
//! `*.proptest-regressions` files are ignored. Case count comes from
//! `PROPTEST_CASES` (default 64).

pub mod collection;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        pub use crate::collection;
    }
}

/// Run one test's cases; used by the `proptest!` expansion.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__rng| {
                    $(let $arg = ($strat).generate(__rng);)+
                    let __inputs = ::std::format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    (__inputs, __result)
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
