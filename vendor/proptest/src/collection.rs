//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Size specifications accepted by collection strategies.
pub trait SizeRange {
    /// Inclusive `(min, max)` element count.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let (lo, hi) = self.size.bounds();
        let n = rng.inner.random_range(lo..=hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, sizes)`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for BTreeSetStrategy<S, R>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let (lo, hi) = self.size.bounds();
        let n = rng.inner.random_range(lo..=hi);
        let mut out = BTreeSet::new();
        // Duplicates collapse; retry a bounded number of times to get
        // close to the requested size.
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 10 + 10 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// `prop::collection::btree_set(element, sizes)`.
pub fn btree_set<S: Strategy, R: SizeRange>(element: S, size: R) -> BTreeSetStrategy<S, R> {
    BTreeSetStrategy { element, size }
}
