//! Regex-subset string generation.
//!
//! Supports the pattern forms this workspace's tests use: character
//! classes (`[a-z]`), the `\PC` escape (any non-control character,
//! including multibyte), parenthesised groups, literal characters, and
//! `{n}` / `{n,m}` repetition. Anything fancier is a panic, not a
//! silent mis-generation.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    /// Inclusive char ranges, e.g. `[a-z0-9_]`.
    Class(Vec<(char, char)>),
    /// `\PC`: any char outside Unicode category C (control/format/...).
    AnyNonControl,
    Literal(char),
    Group(Vec<Element>),
}

#[derive(Debug, Clone)]
struct Element {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let elements = parse_sequence(&mut pattern.chars().peekable(), pattern, false);
    let mut out = String::new();
    emit(&elements, rng, &mut out);
    out
}

fn emit(elements: &[Element], rng: &mut TestRng, out: &mut String) {
    for el in elements {
        let n = if el.min == el.max {
            el.min
        } else {
            rng.inner.random_range(el.min..=el.max)
        };
        for _ in 0..n {
            match &el.atom {
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.inner.random_range(0..ranges.len())];
                    let span = hi as u32 - lo as u32;
                    let mut c = rng.inner.random_range(0..=span) + lo as u32;
                    while char::from_u32(c).is_none() {
                        c = rng.inner.random_range(0..=span) + lo as u32;
                    }
                    out.push(char::from_u32(c).unwrap());
                }
                Atom::AnyNonControl => out.push(non_control_char(rng)),
                Atom::Literal(c) => out.push(*c),
                Atom::Group(inner) => emit(inner, rng, out),
            }
        }
    }
}

/// Sample a printable char: mostly ASCII, with a multibyte tail so
/// UTF-8 boundary handling gets exercised.
fn non_control_char(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] = &[
        'é', 'ß', 'ñ', 'Ø', 'λ', 'Ж', 'ع', 'ह', '中', '日', '한', 'あ', '—', '“', '”', '…', '€',
        '™', '√', '≈', '∞', '🙂', '🚀', '𝔘', 'Ａ', '　',
    ];
    loop {
        let roll: f64 = rng.inner.random();
        let c = if roll < 0.85 {
            // ASCII printable, space included.
            char::from_u32(rng.inner.random_range(0x20u32..0x7F)).unwrap()
        } else {
            EXOTIC[rng.inner.random_range(0..EXOTIC.len())]
        };
        if !c.is_control() {
            return c;
        }
    }
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_sequence(chars: &mut Chars, pattern: &str, in_group: bool) -> Vec<Element> {
    let mut out = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            assert!(in_group, "unbalanced ')' in pattern {pattern:?}");
            chars.next();
            return out;
        }
        chars.next();
        let atom = match c {
            '[' => Atom::Class(parse_class(chars, pattern)),
            '(' => Atom::Group(parse_sequence(chars, pattern, true)),
            '\\' => match chars.next() {
                Some('P') => {
                    let cat = chars.next();
                    assert_eq!(
                        cat,
                        Some('C'),
                        "only \\PC is supported, got \\P{cat:?} in {pattern:?}"
                    );
                    Atom::AnyNonControl
                }
                Some(esc @ ('\\' | '(' | ')' | '[' | ']' | '{' | '}' | '.' | '+' | '*' | '?')) => {
                    Atom::Literal(esc)
                }
                other => panic!("unsupported escape \\{other:?} in pattern {pattern:?}"),
            },
            '{' | '}' | ']' | '*' | '+' | '?' | '.' | '|' => {
                panic!("unsupported metachar {c:?} in pattern {pattern:?}")
            }
            lit => Atom::Literal(lit),
        };
        let (min, max) = parse_repetition(chars, pattern);
        out.push(Element { atom, min, max });
    }
    assert!(!in_group, "unbalanced '(' in pattern {pattern:?}");
    out
}

fn parse_class(chars: &mut Chars, pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let lo = match chars.next() {
            Some(']') => break,
            Some('\\') => chars.next().expect("escape at end of class"),
            Some(c) => c,
            None => panic!("unterminated character class in pattern {pattern:?}"),
        };
        if chars.peek() == Some(&'-') {
            chars.next();
            let hi = match chars.next() {
                Some(']') => {
                    // Trailing '-' is a literal.
                    ranges.push((lo, lo));
                    ranges.push(('-', '-'));
                    break;
                }
                Some('\\') => chars.next().expect("escape at end of class"),
                Some(c) => c,
                None => panic!("unterminated character class in pattern {pattern:?}"),
            };
            assert!(
                lo <= hi,
                "inverted range {lo:?}-{hi:?} in pattern {pattern:?}"
            );
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(
        !ranges.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    ranges
}

fn parse_repetition(chars: &mut Chars, pattern: &str) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    loop {
        match chars.next() {
            Some('}') => break,
            Some(c) => spec.push(c),
            None => panic!("unterminated repetition in pattern {pattern:?}"),
        }
    }
    let parse = |s: &str| -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad repetition {spec:?} in pattern {pattern:?}"))
    };
    match spec.split_once(',') {
        Some((lo, hi)) => (parse(lo), parse(hi)),
        None => {
            let n = parse(&spec);
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        use rand::SeedableRng;
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(7),
        }
    }

    #[test]
    fn class_repetition() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z]{1,24}", &mut r);
            assert!((1..=24).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn non_control_any() {
        let mut r = rng();
        let mut saw_multibyte = false;
        for _ in 0..200 {
            let s = generate("\\PC{0,400}", &mut r);
            assert!(s.chars().count() <= 400);
            assert!(s.chars().all(|c| !c.is_control()));
            saw_multibyte |= s.len() > s.chars().count();
        }
        assert!(saw_multibyte, "expected some multibyte output");
    }

    #[test]
    fn groups_with_literals() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z]{1,8}( [a-z]{1,8}){0,5}", &mut r);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=6).contains(&words.len()));
            assert!(words.iter().all(|w| {
                (1..=8).contains(&w.len()) && w.chars().all(|c| c.is_ascii_lowercase())
            }));
        }
    }

    #[test]
    fn exact_count() {
        let mut r = rng();
        let s = generate("[ab]{4}x", &mut r);
        assert_eq!(s.chars().count(), 5);
        assert!(s.ends_with('x'));
    }
}
