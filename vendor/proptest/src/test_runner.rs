//! Deterministic case runner behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG handed to strategies; wraps the vendored `StdRng`.
pub struct TestRng {
    pub(crate) inner: StdRng,
}

impl TestRng {
    fn for_case(test_name: &str, case: u64) -> Self {
        // Stable seed: FNV-1a over the test name, mixed with the case
        // index so every case sees a fresh stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input out.
    Reject,
    /// `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// How many cases each property runs (`PROPTEST_CASES`, default 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drive `case` until enough inputs pass or too many are rejected.
pub fn run_cases(
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    let wanted = case_count();
    let mut passed = 0u64;
    let mut rejected = 0u64;
    let mut attempt = 0u64;
    while passed < wanted {
        let mut rng = TestRng::for_case(test_name, attempt);
        attempt += 1;
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < wanted * 16,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case #{attempt} failed\n  inputs: {inputs}\n  {msg}")
            }
        }
    }
}
