//! The `Strategy` trait and its primitive implementations.

use crate::pattern;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// String literals act as regex-subset patterns, as in upstream.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.inner.random()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.inner.random()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.inner.random()
    }
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
