//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives with the poison-free `parking_lot` API (guards come back
//! directly, not wrapped in `Result`). A poisoned lock — a thread
//! panicking while holding the guard — aborts the wait-side with a
//! panic, matching the "propagate the panic" spirit of the original.

use std::sync;

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("rwlock poisoned")
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
