//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde`, written directly against `proc_macro` (no `syn`,
//! no `quote` — the registry is unreachable offline).
//!
//! Supported item shapes — exactly what the workspace derives on:
//!
//! * structs with named fields (lifetime generics allowed),
//! * enums whose variants are units or have named fields.
//!
//! Representation matches serde's externally-tagged default: a struct is
//! an object of its fields, a unit variant the string of its name, a
//! struct variant a single-key object `{"Variant": {fields...}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input.
struct Item {
    name: String,
    /// Verbatim generics, e.g. `<'a>`, or empty.
    generics: String,
    kind: Kind,
}

enum Kind {
    Struct(Vec<String>),
    /// Single-field tuple struct, serialized transparently as its inner
    /// value (serde's newtype-struct representation in JSON).
    Newtype,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for a unit variant, `Some(fields)` for named fields.
    fields: Option<Vec<String>>,
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        if *i < tokens.len() && is_punct(&tokens[*i], '#') {
            *i += 2; // `#` + bracket group
            continue;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
            if id.to_string() == "pub" {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
                continue;
            }
        }
        break;
    }
}

/// Parse the field names of a named-field body (brace group content).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(tt) if is_punct(tt, ':')),
            "vendored serde derive: expected `:` after field `{}`",
            fields.last().expect("just pushed")
        );
        i += 1;
        // Skip the type: commas inside `<...>` belong to the type.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                tt if is_punct(tt, '<') => angle_depth += 1,
                tt if is_punct(tt, '>') => angle_depth -= 1,
                tt if is_punct(tt, ',') && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde derive: expected item name, got {other:?}"),
    };
    i += 1;

    let mut generics = String::new();
    if matches!(tokens.get(i), Some(tt) if is_punct(tt, '<')) {
        let mut depth = 0i32;
        loop {
            let tt = tokens.get(i).unwrap_or_else(|| {
                panic!("vendored serde derive: unterminated generics on {name}")
            });
            if is_punct(tt, '<') {
                depth += 1;
            } else if is_punct(tt, '>') {
                depth -= 1;
            }
            generics.push_str(&tt.to_string());
            i += 1;
            if depth == 0 {
                break;
            }
        }
        assert!(
            !generics.contains(':') && !tokens_have_type_param(&generics),
            "vendored serde derive: type parameters/bounds unsupported on {name}"
        );
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && keyword == "struct" =>
        {
            assert_eq!(
                count_tuple_fields(g.stream()),
                1,
                "vendored serde derive: only single-field tuple structs supported, for {name}"
            );
            return Item {
                name,
                generics,
                kind: Kind::Newtype,
            };
        }
        other => panic!(
            "vendored serde derive: only braced {keyword}s supported for {name}, got {other:?}"
        ),
    };

    let kind = if keyword == "struct" {
        Kind::Struct(parse_named_fields(body))
    } else if keyword == "enum" {
        let tokens: Vec<TokenTree> = body.into_iter().collect();
        let mut variants = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            skip_attrs_and_vis(&tokens, &mut i);
            let Some(TokenTree::Ident(vname)) = tokens.get(i) else {
                break;
            };
            let vname = vname.to_string();
            i += 1;
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let f = parse_named_fields(g.stream());
                    i += 1;
                    Some(f)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    panic!("vendored serde derive: tuple variant {name}::{vname} unsupported")
                }
                _ => None,
            };
            if matches!(tokens.get(i), Some(tt) if is_punct(tt, ',')) {
                i += 1;
            }
            variants.push(Variant {
                name: vname,
                fields,
            });
        }
        Kind::Enum(variants)
    } else {
        panic!("vendored serde derive: unsupported item kind `{keyword}`")
    };

    Item {
        name,
        generics,
        kind,
    }
}

/// Count top-level comma-separated fields in a tuple-struct body
/// (angle brackets shield type-internal commas).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    for (idx, tt) in tokens.iter().enumerate() {
        if is_punct(tt, '<') {
            angle_depth += 1;
        } else if is_punct(tt, '>') {
            angle_depth -= 1;
        } else if is_punct(tt, ',') && angle_depth == 0 && idx + 1 < tokens.len() {
            fields += 1;
        }
    }
    fields
}

/// Crude check that generics hold only lifetimes (`'a`) — a bare ident
/// not preceded by `'` would be a type parameter.
fn tokens_have_type_param(generics: &str) -> bool {
    let mut prev_tick = false;
    for part in generics
        .trim_start_matches('<')
        .trim_end_matches('>')
        .split(',')
    {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if !part.starts_with('\'') {
            return true;
        }
        prev_tick = true;
    }
    let _ = prev_tick;
    false
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let Item {
        name,
        generics,
        kind,
    } = &item;

    let body = match kind {
        Kind::Struct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_content(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{entries}])")
        }
        Kind::Newtype => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{name}::{v} => ::serde::Content::Str(::std::string::String::from(\"{v}\")),",
                        v = v.name
                    ),
                    Some(fields) => {
                        let binders = fields.join(", ");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_content({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binders} }} => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), ::serde::Content::Map(::std::vec![{entries}]))]),",
                            v = v.name
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };

    format!(
        "impl{generics} ::serde::Serialize for {name}{generics} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("vendored serde derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let Item {
        name,
        generics,
        kind,
    } = &item;
    assert!(
        generics.is_empty(),
        "vendored serde derive: Deserialize on generic type {name} unsupported"
    );

    let body = match kind {
        Kind::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         __c.get(\"{f}\").unwrap_or(&::serde::Content::Null))?,"
                    )
                })
                .collect();
            format!(
                "match __c {{\n\
                     ::serde::Content::Map(_) => ::std::result::Result::Ok({name} {{ {inits} }}),\n\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"expected object for {name}, got {{:?}}\", __other))),\n\
                 }}"
            )
        }
        Kind::Newtype => {
            format!("::std::result::Result::map(::serde::Deserialize::from_content(__c), {name})")
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(\
                                 __inner.get(\"{f}\").unwrap_or(&::serde::Content::Null))?,"
                            )
                        })
                        .collect();
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),",
                        v = v.name
                    )
                })
                .collect();
            format!(
                "match __c {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"unknown {name} variant {{}}\", __other))),\n\
                     }},\n\
                     ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         let _ = __inner;\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"unknown {name} variant {{}}\", __other))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"expected {name} variant, got {{:?}}\", __other))),\n\
                 }}"
            )
        }
    };

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("vendored serde derive: generated invalid Deserialize impl")
}
