//! Offline stand-in for `serde_json`, rendering and parsing the
//! vendored `serde`'s [`Content`] tree. [`Value`] *is* that tree, so
//! `json!`, `to_string_pretty` and friends interoperate with every
//! `#[derive(Serialize)]` type in the workspace.

use serde::{Deserialize, Serialize};

pub use serde::Content as Value;

/// Serialization / parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_content(&value).map_err(Error::from)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

// ---- writer ----------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    // Bulk fast path: emit maximal runs that need no escaping with one
    // push_str; escapes are rare in real payloads.
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let esc: &str = match b {
            b'"' => "\\\"",
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\r' => "\\r",
            b'\t' => "\\t",
            b if b < 0x20 => "",
            _ => continue,
        };
        out.push_str(&s[start..i]);
        if esc.is_empty() {
            out.push_str(&format!("\\u{:04x}", b));
        } else {
            out.push_str(esc);
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{:?}` prints the shortest round-trip decimal and keeps
                // a trailing `.0` on whole numbers, like upstream.
                out.push_str(&format!("{n:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b't' if self.eat_keyword("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_keyword("false") => Ok(Value::Bool(false)),
            b'n' if self.eat_keyword("null") => Ok(Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk fast path: copy the run up to the next quote or
            // escape in one UTF-8 validation + push_str, instead of
            // re-decoding byte by byte.
            let start = self.pos;
            let mut scan = start;
            while let Some(&b) = self.bytes.get(scan) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                scan += 1;
            }
            if scan > start {
                let slice = &self.bytes[start..scan];
                let s = std::str::from_utf8(slice)
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                out.push_str(s);
                self.pos = scan;
            }
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: combine with a
                                // following `\uXXXX` low surrogate into
                                // one astral scalar; otherwise it is
                                // lone and degrades to U+FFFD.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let mark = self.pos;
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        let scalar =
                                            0x1_0000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        out.push(char::from_u32(scalar).unwrap_or('\u{fffd}'));
                                    } else {
                                        // Not a low surrogate: the
                                        // high one is lone, the next
                                        // escape stands on its own.
                                        out.push('\u{fffd}');
                                        self.pos = mark;
                                    }
                                } else {
                                    out.push('\u{fffd}');
                                }
                            } else {
                                // Lone low surrogates also degrade.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    /// The four hex digits of a `\uXXXX` escape (the `\u` is already
    /// consumed).
    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error("invalid \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("invalid \\u escape".into()))
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text == "-0" {
            // Parsing `-0` as an integer collapses it to 0 and loses the
            // sign, so a parse → re-render round trip of a serialized
            // `-0.0` would not be byte-identical.
            Ok(Value::F64(-0.0))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---- json! macro -----------------------------------------------------

/// Build a [`Value`] literal. Keys must be string literals (which is how
/// every call site in this workspace writes them); values may be `null`,
/// nested `json!` objects/arrays, or arbitrary `Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut __items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_internal!(__items; []; $($tt)*);
        $crate::Value::Seq(__items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut __entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object_internal!(__entries; $($tt)*);
        $crate::Value::Map(__entries)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    // Done.
    ($entries:ident;) => {};
    // `"key": value...` — start munching the value.
    ($entries:ident; $key:literal : $($rest:tt)*) => {
        $crate::json_object_value!($entries; $key; []; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_value {
    // Top-level comma terminates the value.
    ($entries:ident; $key:literal; [$($acc:tt)*]; , $($rest:tt)*) => {
        $entries.push(($key.to_string(), $crate::json!($($acc)*)));
        $crate::json_object_internal!($entries; $($rest)*);
    };
    // End of input terminates the value.
    ($entries:ident; $key:literal; [$($acc:tt)*];) => {
        $entries.push(($key.to_string(), $crate::json!($($acc)*)));
    };
    // Otherwise keep munching one token tree at a time.
    ($entries:ident; $key:literal; [$($acc:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::json_object_value!($entries; $key; [$($acc)* $next]; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    // Done, no trailing element.
    ($items:ident; [];) => {};
    // Done with a final accumulated element.
    ($items:ident; [$($acc:tt)+];) => {
        $items.push($crate::json!($($acc)+));
    };
    // Top-level comma terminates an element.
    ($items:ident; [$($acc:tt)+]; , $($rest:tt)*) => {
        $items.push($crate::json!($($acc)+));
        $crate::json_array_internal!($items; []; $($rest)*);
    };
    // Otherwise keep munching.
    ($items:ident; [$($acc:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::json_array_internal!($items; [$($acc)* $next]; $($rest)*);
    };
}

#[cfg(test)]
// `json!` expands to build-then-push locally; the lint only sees through
// the macro inside its defining crate.
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;

    #[test]
    fn pretty_printing_matches_upstream_layout() {
        let v = json!({
            "name": "test",
            "n": 3,
            "rate": 0.5,
            "items": [1, 2],
            "nested": {"flag": true, "none": null},
        });
        let s = to_string_pretty(&v).expect("serialize");
        assert!(s.contains("\"rate\": 0.5"), "{s}");
        assert!(s.contains("\"n\": 3"), "{s}");
        let back: Value = from_str(&s).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        let s = to_string(&json!({"x": 5.0})).expect("serialize");
        assert_eq!(s, "{\"x\":5.0}");
    }

    #[test]
    fn complex_value_expressions() {
        let rows = [("a", 1.0), ("b", 2.0)];
        let v = json!({
            "total": rows.iter().map(|(_, x)| x).sum::<f64>(),
            "rows": rows
                .iter()
                .map(|(name, x)| json!({"name": *name, "x": x}))
                .collect::<Vec<_>>()
        });
        let s = to_string(&v).expect("serialize");
        assert!(s.contains("\"total\":3.0"), "{s}");
        assert!(s.contains("\"name\":\"b\""), "{s}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = json!({"s": "line\nbreak \"quoted\" \\ tab\t ünïcode"});
        let back: Value = from_str(&to_string(&v).expect("serialize")).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_parse_to_natural_variants() {
        let v: Value = from_str("[1, -2, 3.5, 1e3]").expect("parse");
        assert_eq!(
            v,
            Value::Seq(vec![
                Value::U64(1),
                Value::I64(-2),
                Value::F64(3.5),
                Value::F64(1000.0)
            ])
        );
    }

    #[test]
    fn negative_zero_parses_as_float_with_sign() {
        let v: Value = from_str("[-0, 0]").expect("parse");
        match &v {
            Value::Seq(items) => {
                assert!(matches!(items[0], Value::F64(z) if z == 0.0 && z.is_sign_negative()));
                assert_eq!(items[1], Value::U64(0));
            }
            other => panic!("unexpected parse {other:?}"),
        }
        assert_eq!(to_string(&v).expect("serialize"), "[-0.0,0]");
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
