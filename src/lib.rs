//! # ctxrank — Contextual Ranking of Keywords Using Click Data
//!
//! A from-scratch Rust reproduction of Irmak, von Brzeski & Kraft,
//! *Contextual Ranking of Keywords Using Click Data* (ICDE 2009): the
//! Contextual Shortcuts user-centric entity-detection platform, the
//! click-data-driven learning-to-rank pipeline for key concepts, and every
//! substrate the paper depends on.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names; see each crate for its own documentation:
//!
//! * [`text`] — tokenizer, Porter stemmer, boundary detection, windowing.
//! * [`synth`] — the synthetic world standing in for Yahoo!'s proprietary
//!   query logs, corpus, news stories and click tracking (see `DESIGN.md`).
//! * [`index`] — inverted-index search engine (tf·idf, phrase queries,
//!   snippets).
//! * [`querylog`] — unit extraction via mutual information, query
//!   frequencies, related suggestions and the Prisma-style refinement tool.
//! * [`shortcuts`] — the entity-detection platform itself: detectors,
//!   taxonomy NER, concept-vector generation, the annotation pipeline.
//! * [`features`] — the interestingness feature space (Table I) and the
//!   relevance-keyword miner (§IV-B).
//! * [`ltr`] — pairwise ranking SVM with cross-validation.
//! * [`eval`] — weighted error rate, NDCG, editorial and A/B harnesses.
//! * [`framework`] — the §VI production framework: packed feature stores,
//!   the global TID table, Golomb coding, the immutable [`Snapshot`]
//!   serving artifact, the runtime ranker, and lock-free snapshot
//!   hot-swap via [`ServiceHandle`].
//! * [`serve`] — the dependency-free HTTP/1.1 network front door:
//!   micro-batched `/rank`, backpressure with load shedding, Prometheus
//!   `/metrics`, graceful drain, hot-swap under live traffic.
//!
//! [`Snapshot`]: framework::Snapshot
//! [`ServiceHandle`]: framework::ServiceHandle

/// The most commonly used types, importable in one line:
/// `use ctxrank::prelude::*;`
pub mod prelude {
    pub use ctxrank_eval::{ndcg_at_k, weighted_pair_stats, CtrBuckets, ErrorRateAccumulator};
    pub use ctxrank_features::{
        FeatureExtractor, InterestFeatures, MiningResource, RelevanceModel, RelevanceModelBuilder,
    };
    pub use ctxrank_framework::{
        load_service, load_snapshot, save_service, save_snapshot, OnlineCtrAdjuster, PersistError,
        RuntimeRanker, ServiceHandle, Snapshot, SnapshotBuilder,
    };
    pub use ctxrank_index::{Index, IndexBuilder};
    pub use ctxrank_ltr::{train, RankGroup, RankModel, SvmConfig};
    pub use ctxrank_querylog::{extract_units, QueryLog, UnitConfig, UnitDictionary};
    pub use ctxrank_serve::{ServeConfig, Server};
    pub use ctxrank_shortcuts::{
        Annotation, DictionaryEntry, EntityDictionary, Pipeline, PipelineConfig,
    };
    pub use ctxrank_synth::{SynthWorld, WorldConfig};
    pub use ctxrank_text::{stem, stemmed_terms, tokenize};
}

pub use ctxrank_eval as eval;
pub use ctxrank_features as features;
pub use ctxrank_framework as framework;
pub use ctxrank_index as index;
pub use ctxrank_ltr as ltr;
pub use ctxrank_querylog as querylog;
pub use ctxrank_serve as serve;
pub use ctxrank_shortcuts as shortcuts;
pub use ctxrank_synth as synth;
pub use ctxrank_text as text;
