//! `ctxrank` — command-line front end.
//!
//! ```text
//! ctxrank demo                         annotate a built-in example snippet
//! ctxrank annotate <file|->           annotate a document (plain text or HTML)
//! ctxrank world [--seed N]            generate a synthetic world and print stats
//! ctxrank stem <word>...              Porter-stem words
//! ```
//!
//! `annotate` builds its knowledge (query log, corpus, dictionary) from a
//! small synthetic world so the command works out of the box; a real
//! deployment would load a persisted artifact via
//! `ctxrank::framework::load_ranker` instead.

use ctxrank::prelude::*;
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("demo") => cmd_annotate_text(DEMO_SNIPPET),
        Some("annotate") => match args.get(1).map(String::as_str) {
            Some("-") => {
                let mut buf = String::new();
                if std::io::stdin().read_to_string(&mut buf).is_err() {
                    eprintln!("error: could not read stdin");
                    2
                } else {
                    cmd_annotate_text(&buf)
                }
            }
            Some(path) => match std::fs::read_to_string(path) {
                Ok(text) => cmd_annotate_text(&text),
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    2
                }
            },
            None => {
                eprintln!("usage: ctxrank annotate <file|->");
                2
            }
        },
        Some("world") => {
            let seed = args
                .iter()
                .position(|a| a == "--seed")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(42u64);
            cmd_world(seed)
        }
        Some("stem") => {
            for w in &args[1..] {
                println!("{w} -> {}", stem(&w.to_lowercase()));
            }
            0
        }
        _ => {
            eprintln!(
                "ctxrank — contextual ranking of keywords (ICDE 2009 reproduction)\n\n\
                 usage:\n  ctxrank demo\n  ctxrank annotate <file|->\n  \
                 ctxrank world [--seed N]\n  ctxrank stem <word>..."
            );
            2
        }
    };
    std::process::exit(code);
}

const DEMO_SNIPPET: &str = "President Bush's position was similar to that of New \
    York Sen. Clinton, who argued at a debate with Obama last week in Texas that \
    there should be no talks with Cuba until it makes progress on releasing \
    political prisoners and improving human rights. Contact press@example.org.";

/// Annotate arbitrary text with a demo knowledge base.
fn cmd_annotate_text(text: &str) -> i32 {
    // Small but real knowledge: a query log for units and a corpus for idf.
    let mut log = QueryLog::new();
    for (q, f) in [
        ("political prisoners", 90),
        ("political prisoners cuba", 25),
        ("human rights", 160),
        ("human rights watch", 40),
        ("presidential debate", 30),
    ] {
        log.add(q, f);
    }
    for i in 0..40 {
        log.add(&format!("background query{i}"), 10);
    }
    let units = extract_units(&log, &UnitConfig::default());

    let mut corpus = IndexBuilder::new();
    corpus.add_document(
        "cuba rejects calls to release political prisoners amid human rights pressure",
    );
    corpus.add_document("the human rights watch report criticized detention conditions");
    corpus.add_document("presidential debate covered foreign policy");
    corpus.add_document("markets rallied as tech earnings beat expectations");
    let corpus = corpus.build();

    let mut dictionary = EntityDictionary::new();
    for (surface, code, subtype, geo) in [
        ("cuba", 2u8, "country", Some((21.5, -77.8))),
        ("obama", 1, "politician", None),
        ("clinton", 1, "politician", None),
        ("bush", 1, "politician", None),
        ("texas", 2, "region", Some((31.0, -99.0))),
        ("new york", 2, "region", Some((43.0, -75.0))),
    ] {
        dictionary.insert(DictionaryEntry {
            terms: surface.split(' ').map(str::to_string).collect(),
            type_code: code,
            subtype: subtype.to_string(),
            geo,
            context_terms: Vec::new(),
        });
    }

    let pipeline = Pipeline::new(
        &dictionary,
        &units,
        |t| corpus.idf(t),
        PipelineConfig::default(),
    );
    let doc = pipeline.process(text);
    if doc.annotations.is_empty() {
        println!("(no entities detected)");
        return 0;
    }
    println!("{:<26} {:<12} {:>8}  span", "surface", "kind", "score");
    for a in &doc.annotations {
        let kind = match &a.kind {
            ctxrank::shortcuts::DetectionKind::Pattern(p) => format!("{p:?}").to_lowercase(),
            ctxrank::shortcuts::DetectionKind::Entity { subtype, .. } => subtype.clone(),
            ctxrank::shortcuts::DetectionKind::Concept => "concept".to_string(),
        };
        println!(
            "{:<26} {:<12} {:>8.3}  {}..{}",
            a.surface, kind, a.score, a.span.start, a.span.end
        );
    }
    0
}

/// Generate a small synthetic world and print its statistics.
fn cmd_world(seed: u64) -> i32 {
    let world = SynthWorld::generate(WorldConfig::small(seed));
    println!("seed: {seed}");
    println!("concepts:        {}", world.universe.len());
    println!("  junk:          {}", world.universe.junk().count());
    println!("distinct queries: {}", world.query_log.num_distinct());
    println!("query volume:     {}", world.query_log.total_freq());
    println!("web documents:    {}", world.corpus.num_docs());
    println!("wiki articles:    {}", world.encyclopedia.num_articles());
    println!("news stories:     {}", world.news.len());
    let units = extract_units(&world.query_log, &UnitConfig::default());
    println!(
        "units extracted:  {} ({} multi-term)",
        units.len(),
        units.iter().filter(|u| u.terms.len() > 1).count()
    );
    0
}
