//! Build and drive the §VI production framework end to end: train a
//! ranking SVM on synthetic click data, pack the feature stores (2-byte
//! interestingness fields, 32-bit relevance pairs, 22-bit TIDs), and
//! rank a new document through the runtime path.
//!
//! Run with: `cargo run --release --example production_ranker`

use ctxrank::features::{InterestFeatures, RelevantTerms};
use ctxrank::framework::{
    GlobalTidTable, MemoryReport, PackedInterestStore, PackedRelevanceStore, RuntimeRanker,
};
use ctxrank::ltr::{train, RankGroup, SvmConfig};
use ctxrank::text::stem;

fn main() {
    // --- Offline stage 1: interestingness vectors for the supported
    // concept set (here: three concepts with hand-written features).
    let concepts = vec![
        (
            "solar flares".to_string(),
            InterestFeatures {
                freq_exact: 4200,
                freq_phrase_contained: 6100,
                unit_score: 0.85,
                searchengine_phrase: 950,
                concept_size: 2,
                number_of_chars: 12,
                subconcepts: 0,
                high_level_type: 4,
                wiki_word_count: 3200,
            },
        ),
        (
            "stock markets".to_string(),
            InterestFeatures {
                freq_exact: 2600,
                freq_phrase_contained: 4800,
                unit_score: 0.7,
                searchengine_phrase: 4200,
                concept_size: 2,
                number_of_chars: 13,
                subconcepts: 0,
                high_level_type: 0,
                wiki_word_count: 1800,
            },
        ),
        (
            "my favorite".to_string(),
            InterestFeatures {
                freq_exact: 900,
                freq_phrase_contained: 7400,
                unit_score: 0.9,
                searchengine_phrase: 9000,
                concept_size: 2,
                number_of_chars: 11,
                subconcepts: 0,
                high_level_type: 0,
                wiki_word_count: 0,
            },
        ),
    ];
    let interest = PackedInterestStore::build(&concepts);

    // --- Offline stage 2: relevance keywords (stemmed) per concept.
    let mut tids = GlobalTidTable::new();
    let keyword = |terms: &[(&str, f64)]| RelevantTerms {
        terms: terms.iter().map(|(t, s)| (stem(t), *s)).collect(),
    };
    let solar = keyword(&[
        ("sunspot", 9.0),
        ("telescope", 7.0),
        ("radiation", 6.5),
        ("astronomers", 5.0),
        ("corona", 4.0),
    ]);
    let stocks = keyword(&[
        ("earnings", 8.0),
        ("investors", 6.0),
        ("rally", 5.0),
        ("nasdaq", 5.0),
    ]);
    // Junk: sparse, low-scoring keywords (the Table II signature).
    let junk = keyword(&[("things", 0.4), ("stuff", 0.3)]);
    let relevance = PackedRelevanceStore::build(
        vec![
            ("solar flares", &solar),
            ("stock markets", &stocks),
            ("my favorite", &junk),
        ],
        &mut tids,
    );

    // --- Offline stage 3: the learned model. Train on synthetic click
    // groups where CTR follows freq_exact (dim 0) and relevance (dim 9).
    let groups: Vec<RankGroup> = (0..40)
        .map(|i| {
            let jitter = i as f64 * 1e-3;
            RankGroup::from_pairs(vec![
                (feature_row(8.0 + jitter, 2.2), 0.08),
                (feature_row(7.0, 0.3), 0.03),
                (feature_row(6.5 + jitter, 0.1), 0.012),
            ])
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());

    let ranker = RuntimeRanker::new(interest, relevance, tids, model);

    // --- Runtime: rank the candidates detected in a fresh document.
    let doc = "Astronomers said the telescope captured intense radiation from a \
               sunspot region, while my favorite commentators discussed stock \
               markets only in passing.";
    let candidates = vec![
        "solar flares".to_string(),
        "stock markets".to_string(),
        "my favorite".to_string(),
    ];
    println!("document:\n  {doc}\n");
    println!("{:<16} {:>10} {:>12}", "concept", "score", "relevance");
    for r in ranker.rank(doc, &candidates) {
        println!("{:<16} {:>10.4} {:>12.3}", r.surface, r.score, r.relevance);
    }

    let report = MemoryReport::measure(ranker.interest(), ranker.relevance(), ranker.tids());
    println!(
        "\nmemory: {} B interestingness ({} B/concept), {} B relevance, Golomb saves {:.0}%",
        report.interest_bytes,
        report.interest_bytes_per_concept() as u64,
        report.relevance_bytes,
        report.golomb_saving() * 100.0
    );
}

/// A 10-dimensional feature row with the given freq_exact (log-scale)
/// and relevance feature; everything else zero.
fn feature_row(freq: f64, relevance: f64) -> Vec<f64> {
    let mut v = vec![0.0; 10];
    v[0] = freq;
    v[9] = relevance;
    v
}
