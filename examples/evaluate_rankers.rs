//! Evaluate ranking policies with the paper's metrics: the weighted
//! error rate (Eq. 5) and NDCG with CTR-bucket gains (Eq. 6), including
//! the §V-A.2 worked example.
//!
//! Run with: `cargo run --release --example evaluate_rankers`

use ctxrank::eval::{ndcg_at_k, pair_stats, weighted_pair_stats, CtrBuckets, ErrorRateAccumulator};

fn main() {
    // The paper's worked example: four concepts with observed CTRs and
    // two candidate rankings, R1 = [A, B, D, C] and R2 = [B, A, C, D].
    let ctrs = [0.15, 0.05, 0.02, 0.01];
    let r1 = [4.0, 3.0, 1.0, 2.0];
    let r2 = [3.0, 4.0, 2.0, 1.0];

    println!("=== §V-A.2 worked example ===");
    for (name, scores) in [("R1 = [A,B,D,C]", &r1), ("R2 = [B,A,C,D]", &r2)] {
        let plain = pair_stats(scores, &ctrs);
        let weighted = weighted_pair_stats(scores, &ctrs);
        println!(
            "{name}: error rate {:.2}%, weighted error rate {:.2}%",
            plain.rate() * 100.0,
            weighted.rate() * 100.0
        );
    }
    println!("(paper: both 16.67% plain; 2.22% vs 22.22% weighted)");

    // NDCG with the simplified gain score(j) = CTR(j) * 10.
    let gains: Vec<f64> = ctrs.iter().map(|c| 2f64.powf(c * 10.0) - 1.0).collect();
    for k in 1..=3 {
        println!(
            "ndcg@{k}: R1 {:.2}, R2 {:.2}",
            ndcg_at_k(&r1, &gains, k),
            ndcg_at_k(&r2, &gains, k)
        );
    }
    println!("(paper: @1 1.00/0.23, @2 1.00/0.75, @3 0.98/0.76)");

    // A corpus-level evaluation: accumulate several documents and use
    // the CTR-bucket gain function over all observed CTRs.
    println!("\n=== corpus-level accumulation ===");
    let documents = vec![
        (vec![3.0, 2.0, 1.0], vec![0.06, 0.02, 0.01]), // perfect
        (vec![1.0, 2.0, 3.0], vec![0.05, 0.03, 0.00]), // reversed
        (vec![2.0, 2.0, 1.0], vec![0.04, 0.01, 0.02]), // with a tie
    ];
    let buckets = CtrBuckets::new(documents.iter().flat_map(|d| d.1.clone()).collect());
    let mut acc = ErrorRateAccumulator::new();
    for (scores, ctrs) in &documents {
        acc.add(scores, ctrs);
    }
    println!(
        "error rate {:.2}%, weighted error rate {:.2}%",
        acc.error_rate() * 100.0,
        acc.weighted_error_rate() * 100.0
    );
    println!(
        "bucketized gains for CTR 0.06 / 0.01: {:.2} / {:.2}",
        buckets.gain(0.06),
        buckets.gain(0.01)
    );
}
