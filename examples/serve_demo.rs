//! End-to-end serving demo: build a synthetic snapshot through the
//! offline stage pipeline, stream a burst of fresh click events through
//! the append-only segment log into an incremental delta publish, then
//! serve the updated snapshot over HTTP until told to stop.
//!
//! ```text
//! cargo run --release --example serve_demo
//! # in another terminal:
//! curl -s localhost:7878/healthz
//! curl -s localhost:7878/rank -d '{"text": "...", "candidates": ["..."]}'
//! curl -s localhost:7878/metrics
//! curl -s -X POST localhost:7878/admin/shutdown
//! ```
//!
//! Knobs: `CTXRANK_SERVE_ADDR` (default `127.0.0.1:7878`),
//! `CTXRANK_THREADS` (worker pool size).

use ctxrank_bench::{build_projector, Experiment, ExperimentConfig};
use ctxrank_framework::ServiceHandle;
use ctxrank_querylog::{Event, SegmentConfig, SegmentStore};
use ctxrank_serve::{ServeConfig, Server};
use std::sync::Arc;

fn main() {
    eprintln!("serve_demo: building the synthetic experiment (offline stage pipeline)...");
    let exp = Experiment::build(ExperimentConfig::small(0xd43a));
    let (mut projector, snapshot) = build_projector(&exp);
    eprintln!(
        "serve_demo: snapshot epoch {} with {} concepts",
        snapshot.epoch(),
        snapshot.interest().len()
    );

    // A few real surfaces from the snapshot so the printed curl line
    // returns non-trivial rankings out of the box.
    let mut surfaces: Vec<&String> = exp.interest_raw.keys().collect();
    surfaces.sort_unstable();
    let sample: Vec<String> = surfaces.iter().take(3).map(|s| s.to_string()).collect();
    let sample_doc = exp.world.news[0].text.chars().take(200).collect::<String>();

    let handle = Arc::new(ServiceHandle::new(snapshot));
    let addr = std::env::var("CTXRANK_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".into());
    let server = Server::start(
        Arc::clone(&handle),
        ServeConfig {
            addr,
            enable_shutdown_endpoint: true,
            ..ServeConfig::default()
        }
        // Epoch-keyed result cache: repeated queries are served from
        // memory until the next publish invalidates every key.
        .with_cache(32 << 20),
    )
    .expect("start server");

    // Streaming ingestion: a burst of fresh click events lands in the
    // append-only log, seals, and folds into an incremental delta
    // publish — the served epoch advances without an offline rebuild.
    let mut store = SegmentStore::in_memory(SegmentConfig::default());
    for (i, s) in surfaces.iter().take(64).enumerate() {
        store
            .append(&Event::Click {
                story: 1_000_000 + i as u64,
                surface: s.to_string(),
                views: 120,
                clicks: (i % 7) as u64,
            })
            .expect("in-memory append");
    }
    store.seal().expect("seal ingest burst");
    let folded = projector.folded_seq();
    let lag: u64 = store
        .sealed()
        .iter()
        .filter(|m| m.seq >= folded)
        .map(|m| m.events)
        .sum();
    server.metrics().set_ingest_lag_events(lag);
    server.metrics().set_segment_bytes(store.sealed_bytes());
    eprintln!("serve_demo: {lag} sealed events behind the served epoch");
    let epoch = projector
        .publish_from(&store, &handle)
        .expect("delta publish");
    server.metrics().record_delta_publish();
    server.metrics().set_ingest_lag_events(0);
    eprintln!("serve_demo: delta publish advanced serving to epoch {epoch}");

    let local = server.local_addr();
    let body = serde_json::json!({
        "text": sample_doc,
        "candidates": serde_json::Value::Seq(
            sample.iter().cloned().map(serde_json::Value::Str).collect()
        ),
    });
    println!("serve_demo: ready on http://{local}");
    println!("  curl -s {local}/healthz");
    println!(
        "  curl -s {local}/rank -d '{}'",
        serde_json::to_string(&body).expect("sample body")
    );
    println!("  curl -s {local}/metrics");
    println!("  curl -s -X POST {local}/admin/shutdown");

    server.wait_for_shutdown_request();
    eprintln!("serve_demo: shutdown requested, draining...");
    server.shutdown();
    eprintln!("serve_demo: done");
}
