//! Quickstart: detect and rank the key concepts in a piece of text.
//!
//! Builds the Contextual Shortcuts pipeline from a tiny hand-rolled
//! knowledge base (a query log, a web corpus, an entity dictionary) and
//! annotates a news snippet, printing every detected entity with its
//! baseline concept-vector score — the ranking the production system
//! used before the paper's learned model.
//!
//! Run with: `cargo run --example quickstart`

use ctxrank::index::IndexBuilder;
use ctxrank::querylog::{extract_units, QueryLog, UnitConfig};
use ctxrank::shortcuts::{DictionaryEntry, EntityDictionary, Pipeline, PipelineConfig};

fn main() {
    // 1. A search-engine query log: concepts people search for.
    let mut log = QueryLog::new();
    for (query, freq) in [
        ("political prisoners", 90),
        ("political prisoners cuba", 25),
        ("human rights", 160),
        ("human rights watch", 40),
        ("havana travel", 35),
        ("debate highlights", 20),
    ] {
        log.add(query, freq);
    }
    // Pad the log so unit extraction has co-occurrence statistics.
    for i in 0..40 {
        log.add(&format!("filler query number{i}"), 10);
    }
    let units = extract_units(&log, &UnitConfig::default());

    // 2. A small web corpus for term-document frequencies (idf).
    let mut corpus = IndexBuilder::new();
    corpus.add_document(
        "cuba rejects calls to release political prisoners amid human rights pressure",
    );
    corpus.add_document("the human rights watch report criticized detention conditions");
    corpus.add_document("presidential debate covered foreign policy and the economy");
    corpus.add_document("havana travel restrictions eased for family visits");
    corpus.add_document("markets rallied as tech earnings beat expectations");
    let corpus = corpus.build();

    // 3. The editorial entity dictionary with taxonomy metadata.
    let mut dictionary = EntityDictionary::new();
    for (surface, type_code, subtype, geo) in [
        ("cuba", 2u8, "country", Some((21.5, -77.8))),
        ("obama", 1, "politician", None),
        ("clinton", 1, "politician", None),
        ("texas", 2, "region", Some((31.0, -99.0))),
    ] {
        dictionary.insert(DictionaryEntry {
            terms: surface.split(' ').map(str::to_string).collect(),
            type_code,
            subtype: subtype.to_string(),
            geo,
            context_terms: Vec::new(),
        });
    }

    // 4. Assemble the platform and process a document (§II).
    let pipeline = Pipeline::new(
        &dictionary,
        &units,
        |term| corpus.idf(term),
        PipelineConfig::default(),
    );
    let snippet = "<p>Clinton argued at a debate with Obama in Texas that there \
                   should be no talks with Cuba until it makes progress on releasing \
                   political prisoners and improving human rights. \
                   Contact press@example.org.</p>";
    let doc = pipeline.process(snippet);

    println!("plain text:\n  {}\n", doc.text);
    println!("{:<24} {:<28} {:>8}", "surface", "kind", "score");
    for a in &doc.annotations {
        println!(
            "{:<24} {:<28} {:>8.3}",
            a.surface,
            format!("{:?}", a.kind),
            a.score
        );
    }
    let mut ranked: Vec<_> = doc.rankable().collect();
    ranked.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    println!(
        "\ntop concept by the §II-B baseline: {:?}",
        ranked.first().map(|a| a.surface.as_str())
    );
}
