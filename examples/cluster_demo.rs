//! Sharded-cluster demo: split one snapshot across two shard servers
//! (shard 0 with a replica), put the scatter-gather router in front,
//! and prove the two headline properties live:
//!
//! * the router's merged `/rank` body is **byte-identical** to an
//!   unsharded single-process server ranking the same snapshot;
//! * a **two-phase epoch publish** (prepare on every backend, then
//!   commit) advances the whole cluster under concurrent router
//!   traffic without any client ever seeing a mixed-epoch response.
//!
//! ```text
//! cargo run --release --example cluster_demo
//! # in another terminal:
//! curl -s localhost:7979/healthz
//! curl -s localhost:7979/rank -d '{"text": "...", "candidates": ["..."]}'
//! curl -s localhost:7979/metrics
//! curl -s -X POST localhost:7979/admin/shutdown
//! ```
//!
//! Knobs: `CTXRANK_ROUTER_ADDR` (default `127.0.0.1:7979`),
//! `CTXRANK_SHARD0_ADDR` (`:7980`), `CTXRANK_SHARD1_ADDR` (`:7981`),
//! `CTXRANK_SHARD0_REPLICA_ADDR` (`:7982`), `CTXRANK_SINGLE_ADDR`
//! (`:7983` — the unsharded comparison server), `CTXRANK_THREADS`.

use ctxrank_bench::{build_projector, Experiment, ExperimentConfig};
use ctxrank_framework::persist::save_snapshot;
use ctxrank_framework::{partition_snapshot, ServiceHandle, Snapshot};
use ctxrank_querylog::{Event, SegmentConfig, SegmentStore};
use ctxrank_router::{RouterConfig, RouterServer, RouterServerConfig, ScatterGather, ShardSpec};
use ctxrank_serve::{one_shot, request_classified, ClientConfig, ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn addr_env(var: &str, default: &str) -> String {
    std::env::var(var).unwrap_or_else(|_| default.to_string())
}

/// Start one shard server (`bounds` published, owned flags rendered,
/// epoch barrier admin on).
fn start_shard(
    snapshot: Arc<Snapshot>,
    bounds: ctxrank_framework::ShardBounds,
    addr: String,
) -> Server {
    Server::start(
        Arc::new(ServiceHandle::new(snapshot)),
        ServeConfig {
            addr,
            // Explicit worker count: a single-core box would otherwise
            // size the pool at 1, and the router's pooled keep-alive
            // connection would starve the admin (barrier) endpoints.
            workers: 4,
            enable_shutdown_endpoint: true,
            ..ServeConfig::default()
        }
        .as_shard(bounds),
    )
    .expect("start shard server")
}

/// `POST /rank` and return the response body, panicking on non-200.
fn rank_body(addr: SocketAddr, body: &str) -> String {
    let (status, _, text) = one_shot(addr, "POST", "/rank", Some(body)).expect("rank request");
    assert_eq!(status, 200, "rank failed at {addr}: {text}");
    text
}

fn main() {
    eprintln!("cluster_demo: building the synthetic experiment (offline stage pipeline)...");
    let exp = Experiment::build(ExperimentConfig::small(0xd43a));
    let (mut projector, full) = build_projector(&exp);
    eprintln!(
        "cluster_demo: snapshot epoch {} with {} concepts",
        full.epoch(),
        full.interest().len()
    );

    // --- partition and boot the cluster --------------------------------
    let parts = partition_snapshot(&full, 2).expect("partition snapshot");
    let shard0 = start_shard(
        parts[0].snapshot.clone(),
        parts[0].bounds,
        addr_env("CTXRANK_SHARD0_ADDR", "127.0.0.1:7980"),
    );
    let shard1 = start_shard(
        parts[1].snapshot.clone(),
        parts[1].bounds,
        addr_env("CTXRANK_SHARD1_ADDR", "127.0.0.1:7981"),
    );
    // A replica of shard 0: same partition, second process slot. The
    // router fails over to it if the primary dies.
    let replica0 = start_shard(
        parts[0].snapshot.clone(),
        parts[0].bounds,
        addr_env("CTXRANK_SHARD0_REPLICA_ADDR", "127.0.0.1:7982"),
    );
    // The unsharded comparison server: one process, the whole snapshot.
    let handle = Arc::new(ServiceHandle::new(full.clone()));
    let single = Server::start(
        Arc::clone(&handle),
        ServeConfig {
            addr: addr_env("CTXRANK_SINGLE_ADDR", "127.0.0.1:7983"),
            workers: 4,
            enable_shutdown_endpoint: true,
            ..ServeConfig::default()
        },
    )
    .expect("start unsharded server");

    let sg = Arc::new(ScatterGather::new(
        vec![
            ShardSpec {
                primary: shard0.local_addr(),
                replicas: vec![replica0.local_addr()],
            },
            ShardSpec::single(shard1.local_addr()),
        ],
        RouterConfig::default(),
    ));
    let router = RouterServer::start(
        Arc::clone(&sg),
        RouterServerConfig {
            addr: addr_env("CTXRANK_ROUTER_ADDR", "127.0.0.1:7979"),
            enable_shutdown_endpoint: true,
            ..RouterServerConfig::default()
        },
    )
    .expect("start router");
    eprintln!(
        "cluster_demo: shard 0 on {} (replica {}), shard 1 on {}, unsharded on {}",
        shard0.local_addr(),
        replica0.local_addr(),
        shard1.local_addr(),
        single.local_addr()
    );

    // --- prove bit-identity at the boot epoch --------------------------
    // Real surfaces plus one globally-unknown candidate, so the merge
    // exercises both the owned and the deduplicated-unknown paths.
    let mut surfaces: Vec<&String> = exp.interest_raw.keys().collect();
    surfaces.sort_unstable();
    let mut sample: Vec<String> = surfaces.iter().take(3).map(|s| s.to_string()).collect();
    sample.push("sharded unknown concept".to_string());
    let sample_doc = exp.world.news[0].text.chars().take(200).collect::<String>();
    let body = serde_json::to_string(&serde_json::json!({
        "text": sample_doc,
        "candidates": serde_json::Value::Seq(
            sample.iter().cloned().map(serde_json::Value::Str).collect()
        ),
    }))
    .expect("sample body");

    let merged = rank_body(router.local_addr(), &body);
    let unsharded = rank_body(single.local_addr(), &body);
    assert_eq!(merged, unsharded, "router merge diverged from unsharded");
    eprintln!("cluster_demo: router merge is byte-identical to the unsharded answer ✓");

    // --- two-phase publish to epoch E+1 under router traffic -----------
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = {
        let stop = Arc::clone(&stop);
        let router_addr = router.local_addr();
        let body = body.clone();
        std::thread::spawn(move || {
            let mut epochs: Vec<u64> = Vec::new();
            while !stop.load(Ordering::Acquire) {
                if let Ok((200, _, text)) = one_shot(router_addr, "POST", "/rank", Some(&body)) {
                    let epoch: u64 = text
                        .split("\"epoch\":")
                        .nth(1)
                        .and_then(|rest| {
                            rest.split(|c: char| !c.is_ascii_digit())
                                .next()?
                                .parse()
                                .ok()
                        })
                        .expect("epoch in response");
                    epochs.push(epoch);
                }
            }
            epochs
        })
    };

    // A burst of fresh click events folds into a delta publish on the
    // unsharded handle — that gives us the next epoch's full snapshot.
    let mut store = SegmentStore::in_memory(SegmentConfig::default());
    for (i, s) in surfaces.iter().take(64).enumerate() {
        store
            .append(&Event::Click {
                story: 1_000_000 + i as u64,
                surface: s.to_string(),
                views: 120,
                clicks: (i % 7) as u64,
            })
            .expect("in-memory append");
    }
    store.seal().expect("seal ingest burst");
    let next_epoch = projector
        .publish_from(&store, &handle)
        .expect("delta publish");
    let next_full = handle.current();
    eprintln!("cluster_demo: unsharded server advanced to epoch {next_epoch}; running the shard barrier...");

    // Phase 1 — prepare: every backend (primaries *and* replicas) loads
    // the next partition into staging. No shard serves it yet.
    let next_parts = partition_snapshot(&next_full, 2).expect("partition next snapshot");
    let admin_client = ClientConfig {
        connect_timeout: std::time::Duration::from_secs(5),
        read_timeout: std::time::Duration::from_secs(5),
        retries: 0,
        ..ClientConfig::default()
    };
    let scratch = std::env::temp_dir().join(format!("ctxrank-cluster-demo-{}", std::process::id()));
    let backends: [(&Server, usize); 3] = [(&shard0, 0), (&replica0, 0), (&shard1, 1)];
    for (i, (server, part)) in backends.iter().enumerate() {
        let dir = scratch.join(format!("backend{i}"));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        save_snapshot(&next_parts[*part].snapshot, &dir).expect("save partition");
        let prepare = serde_json::to_string(&serde_json::json!({
            "dir": dir.to_string_lossy().into_owned(),
            "epoch": next_epoch,
        }))
        .expect("prepare body");
        let (status, _, text) = request_classified(
            server.local_addr(),
            "POST",
            "/admin/epoch/prepare",
            Some(&prepare),
            &admin_client,
        )
        .expect("prepare request");
        assert_eq!(status, 200, "prepare failed: {text}");
    }
    // Phase 2 — commit: atomically flip every backend to the staged
    // epoch. Router traffic continues throughout; a gather that lands
    // across the commit wave mixes epochs, which the router detects and
    // retries — clients only ever see single-epoch merges.
    let commit =
        serde_json::to_string(&serde_json::json!({ "epoch": next_epoch })).expect("commit body");
    for (server, _) in backends.iter() {
        let (status, _, text) = request_classified(
            server.local_addr(),
            "POST",
            "/admin/epoch/commit",
            Some(&commit),
            &admin_client,
        )
        .expect("commit request");
        assert_eq!(status, 200, "commit failed: {text}");
    }
    stop.store(true, Ordering::Release);
    let epochs = traffic.join().expect("traffic thread");
    let flips = epochs.windows(2).filter(|w| w[0] != w[1]).count();
    assert!(
        epochs.windows(2).all(|w| w[0] <= w[1]),
        "router-observed epochs regressed: {epochs:?}"
    );
    eprintln!(
        "cluster_demo: {} in-flight responses, epochs monotone with {flips} flip(s), {} mixed-epoch gather(s) retried internally",
        epochs.len(),
        sg.metrics().epoch_mismatch_total()
    );
    let _ = std::fs::remove_dir_all(&scratch);

    // Bit-identity must hold at the new epoch too.
    let merged = rank_body(router.local_addr(), &body);
    let unsharded = rank_body(single.local_addr(), &body);
    assert_eq!(merged, unsharded, "post-publish merge diverged");
    eprintln!("cluster_demo: post-publish merge is byte-identical at epoch {next_epoch} ✓");

    let local = router.local_addr();
    println!("cluster_demo: router ready on http://{local} (epoch {next_epoch})");
    println!("  curl -s {local}/healthz");
    println!("  curl -s {local}/rank -d '{body}'");
    println!("  curl -s {local}/metrics");
    println!(
        "  curl -s {}/rank -d '...'   # unsharded comparison server",
        single.local_addr()
    );
    println!("  curl -s -X POST {local}/admin/shutdown");

    router.wait_for_shutdown_request();
    eprintln!("cluster_demo: shutdown requested, draining router and shards...");
    router.shutdown();
    shard0.shutdown();
    replica0.shutdown();
    shard1.shutdown();
    single.shutdown();
    eprintln!("cluster_demo: done");
}
