//! Generate the full synthetic world and walk through the offline
//! mining pipeline: unit extraction, interestingness features, relevance
//! keywords and the click simulation — everything the paper precomputes
//! before the runtime ranker goes live.
//!
//! Run with: `cargo run --release --example synthetic_world`

use ctxrank::features::{FeatureExtractor, MiningResource, RelevanceModel, RelevanceModelBuilder};
use ctxrank::querylog::{extract_units, UnitConfig};
use ctxrank::synth::clicks::simulate_story;
use ctxrank::synth::news::ground_truth_relevance;
use ctxrank::synth::{ClickConfig, SynthWorld, WorldConfig};

fn main() {
    // A laptop-sized world: 6 topics, ~135 concepts, 600 web documents.
    let world = SynthWorld::generate(WorldConfig::small(42));
    println!(
        "world: {} concepts, {} distinct queries ({} submissions), {} web docs, {} stories",
        world.universe.len(),
        world.query_log.num_distinct(),
        world.query_log.total_freq(),
        world.corpus.num_docs(),
        world.news.len()
    );

    // Unit extraction (§II-B): multi-term query-log phrases validated by
    // mutual information.
    let units = extract_units(&world.query_log, &UnitConfig::default());
    let multi = units.iter().filter(|u| u.terms.len() > 1).count();
    println!("units: {} total, {multi} multi-term", units.len());

    // Table I features for the most and least interesting concepts.
    let extractor = FeatureExtractor::new(
        &world.query_log,
        &units,
        &world.corpus,
        |terms| {
            world
                .universe
                .all()
                .iter()
                .find(|c| c.terms == terms)
                .map_or(0, |c| world.encyclopedia.word_count(c.id))
        },
        |_| 0,
    );
    let mut specs: Vec<_> = world
        .universe
        .all()
        .iter()
        .filter(|c| !c.is_junk())
        .collect();
    specs.sort_by(|a, b| {
        b.interestingness
            .partial_cmp(&a.interestingness)
            .expect("finite")
    });
    for (label, spec) in [("hot", specs[0]), ("cold", specs[specs.len() - 1])] {
        let f = extractor.interestingness(&spec.terms);
        println!(
            "{label} concept {:?} (latent {:.2}): freq_exact {}, phrase_contained {}, wiki {}",
            spec.surface(),
            spec.interestingness,
            f.freq_exact,
            f.freq_phrase_contained,
            f.wiki_word_count
        );
    }

    // Relevance keywords (§IV-B) for the hot concept, from snippets.
    // The idf floor plays the role of web-scale stopwording (DESIGN.md §1).
    let mut builder = RelevanceModelBuilder::new(&world.corpus, &world.query_log);
    builder.min_idf = 3.2;
    let mined = builder.mine(&specs[0].terms, MiningResource::Snippets);
    println!(
        "snippet keywords for {:?}: {} terms, summation {:.1}, top-3 {:?}",
        specs[0].surface(),
        mined.len(),
        mined.summation(),
        mined
            .terms
            .iter()
            .take(3)
            .map(|(t, _)| t.as_str())
            .collect::<Vec<_>>()
    );

    // Score the hot concept in the story closest to its sub-topic vs a
    // story from a different topic entirely (relevance is graded by
    // sub-topic center distance, see `ctxrank::synth::news`).
    let on_story = world
        .news
        .iter()
        .filter(|s| Some(s.topic) == specs[0].topic)
        .min_by(|a, b| {
            let da = ctxrank::synth::lexicon::center_distance(a.center, specs[0].center);
            let db = ctxrank::synth::lexicon::center_distance(b.center, specs[0].center);
            da.partial_cmp(&db).expect("finite")
        })
        .expect("a story in the concept's topic");
    let off_story = world
        .news
        .iter()
        .find(|s| Some(s.topic) != specs[0].topic)
        .expect("a story outside it");
    let on = mined.score_context(&RelevanceModel::context_of(&on_story.text));
    let off = mined.score_context(&RelevanceModel::context_of(&off_story.text));
    println!("relevance in nearest on-subtopic story {on:.1} vs off-topic story {off:.1}");

    // Click simulation (§III): the implicit feedback the ranker learns
    // from.
    let story = &world.news[0];
    let annotated: Vec<_> = story
        .mentions
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let gt = ground_truth_relevance(
                world.universe.get(m.concept),
                story.topic,
                story.center,
                story.secondary_topic,
            );
            (m.concept, gt, i as f64 / story.mentions.len().max(1) as f64)
        })
        .collect();
    let clicks = simulate_story(
        7,
        story.id,
        &world.universe,
        &annotated,
        &ClickConfig::default(),
    );
    println!(
        "story 0: {} views, {} total clicks across {} annotated entities (passes paper filter: {})",
        clicks.views,
        clicks.total_clicks(),
        clicks.records.len(),
        clicks.passes_paper_filter()
    );
}
