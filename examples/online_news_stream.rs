//! A news-stream serving loop: load a persisted production ranker,
//! annotate incoming stories, collect click feedback, and adapt online —
//! the full §VI + §VIII story through the public API.
//!
//! Run with: `cargo run --release --example online_news_stream`

use ctxrank::features::{InterestFeatures, RelevantTerms};
use ctxrank::framework::{
    load_ranker, save_ranker, GlobalTidTable, OnlineConfig, OnlineCtrAdjuster, PackedInterestStore,
    PackedRelevanceStore, RuntimeRanker,
};
use ctxrank::ltr::{train, RankGroup, SvmConfig};
use ctxrank::text::stem;

fn main() {
    // ---- Offline: build, train and persist the serving artifact.
    let concepts: Vec<(String, InterestFeatures)> = [
        ("world cup", 4000u64, 2500u32),
        ("transfer rumours", 900, 400),
        ("qualifying rounds", 150, 120),
    ]
    .iter()
    .map(|(s, freq, wiki)| {
        (
            s.to_string(),
            InterestFeatures {
                freq_exact: *freq,
                freq_phrase_contained: freq * 2,
                unit_score: 0.8,
                searchengine_phrase: freq / 3,
                concept_size: 2,
                number_of_chars: s.len() as u32,
                subconcepts: 0,
                high_level_type: 4,
                wiki_word_count: *wiki,
            },
        )
    })
    .collect();
    let interest = PackedInterestStore::build(&concepts);

    let mut tids = GlobalTidTable::new();
    let kw = |terms: &[(&str, f64)]| RelevantTerms {
        terms: terms.iter().map(|(t, s)| (stem(t), *s)).collect(),
    };
    let sets = [
        (
            "world cup",
            kw(&[("stadium", 8.0), ("final", 7.0), ("goal", 6.0)]),
        ),
        (
            "transfer rumours",
            kw(&[("signing", 6.0), ("fee", 5.0), ("club", 4.0)]),
        ),
        (
            "qualifying rounds",
            kw(&[("fixture", 5.0), ("group", 4.0), ("standings", 4.0)]),
        ),
    ];
    let relevance = PackedRelevanceStore::build(sets.iter().map(|(s, r)| (*s, r)), &mut tids);

    let groups: Vec<RankGroup> = (0..30)
        .map(|g| {
            RankGroup::from_pairs((0..3).map(|i| {
                let mut f = vec![0.0; 10];
                f[0] = 4.0 + i as f64 * 2.0 + g as f64 * 0.01;
                f[9] = i as f64;
                (f, 0.01 * (i + 1) as f64)
            }))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());
    let ranker = RuntimeRanker::new(interest, relevance, tids, model);

    let artifact = std::env::temp_dir().join("ctxrank_example_artifact");
    save_ranker(&ranker, &artifact).expect("persist the offline artifact");
    println!("offline artifact written to {}", artifact.display());

    // ---- Online: a serving process loads the artifact cold.
    let serving = load_ranker(&artifact).expect("load the artifact");
    let mut adjuster = OnlineCtrAdjuster::new(OnlineConfig {
        gain: 3.0,
        max_adjust: 8.0,
        ..OnlineConfig::default()
    });

    let candidates: Vec<String> = concepts.iter().map(|(s, _)| s.clone()).collect();
    let story = "The stadium roared as the final goal settled the group standings \
                 and the qualifying fixture list for the cup.";

    println!("\nserving loop (CTR feedback arrives after each batch):");
    for batch in 0..6 {
        let ranked = serving.rank_online(story, &candidates, &adjuster);
        println!(
            "batch {batch}: {}",
            ranked
                .iter()
                .map(|r| format!("{} ({:.2})", r.surface, r.score))
                .collect::<Vec<_>>()
                .join("  >  ")
        );
        // Feedback: "qualifying rounds" (statically least interesting)
        // suddenly draws heavy clicks — a knockout upset.
        for surface in &candidates {
            let (views, clicks) = if surface == "qualifying rounds" && batch >= 1 {
                (20_000, 3_000)
            } else if surface == "world cup" {
                (20_000, 700)
            } else {
                (20_000, 260)
            };
            adjuster.record(surface, views, clicks);
        }
    }
    println!(
        "\nadjustments now: world cup {:+.2}, transfer rumours {:+.2}, qualifying rounds {:+.2}",
        adjuster.adjustment("world cup"),
        adjuster.adjustment("transfer rumours"),
        adjuster.adjustment("qualifying rounds"),
    );

    std::fs::remove_dir_all(&artifact).ok();
}
