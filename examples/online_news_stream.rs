//! A news-stream serving loop: freeze an offline snapshot, serve it
//! through a [`ServiceHandle`], adapt to click feedback online, hot-swap
//! a rebuilt snapshot mid-traffic, and persist/reload the whole service
//! — the full §VI + §VIII story through the public API.
//!
//! Run with: `cargo run --release --example online_news_stream`

use ctxrank::features::{InterestFeatures, RelevantTerms};
use ctxrank::framework::{
    load_service, save_service, GlobalTidTable, OnlineConfig, OnlineCtrAdjuster,
    PackedInterestStore, PackedRelevanceStore, ServiceHandle, Snapshot, SnapshotBuilder,
};
use ctxrank::ltr::{train, RankGroup, SvmConfig};
use ctxrank::text::stem;
use std::sync::Arc;

/// One offline rebuild: pack the stores, train the model, freeze the
/// snapshot. `keyword_boost` stands in for the fresher mining data a
/// later rebuild would see.
fn rebuild_snapshot(concepts: &[(String, InterestFeatures)], keyword_boost: f64) -> Arc<Snapshot> {
    let interest = PackedInterestStore::build(concepts);

    let mut tids = GlobalTidTable::new();
    let kw = |terms: &[(&str, f64)]| RelevantTerms {
        terms: terms
            .iter()
            .map(|(t, s)| (stem(t), *s * keyword_boost))
            .collect(),
    };
    let sets = [
        (
            "world cup",
            kw(&[("stadium", 8.0), ("final", 7.0), ("goal", 6.0)]),
        ),
        (
            "transfer rumours",
            kw(&[("signing", 6.0), ("fee", 5.0), ("club", 4.0)]),
        ),
        (
            "qualifying rounds",
            kw(&[("fixture", 5.0), ("group", 4.0), ("standings", 4.0)]),
        ),
    ];
    let relevance = PackedRelevanceStore::build(sets.iter().map(|(s, r)| (*s, r)), &mut tids);

    let groups: Vec<RankGroup> = (0..30)
        .map(|g| {
            RankGroup::from_pairs((0..3).map(|i| {
                let mut f = vec![0.0; 10];
                f[0] = 4.0 + i as f64 * 2.0 + g as f64 * 0.01;
                f[9] = i as f64;
                (f, 0.01 * (i + 1) as f64)
            }))
        })
        .collect();
    let model = train(&groups, &SvmConfig::default());

    SnapshotBuilder::new()
        .interest(interest)
        .relevance(relevance)
        .tids(tids)
        .model(model)
        .build()
        .expect("all snapshot components supplied")
}

fn main() {
    let concepts: Vec<(String, InterestFeatures)> = [
        ("world cup", 4000u64, 2500u32),
        ("transfer rumours", 900, 400),
        ("qualifying rounds", 150, 120),
    ]
    .iter()
    .map(|(s, freq, wiki)| {
        (
            s.to_string(),
            InterestFeatures {
                freq_exact: *freq,
                freq_phrase_contained: freq * 2,
                unit_score: 0.8,
                searchengine_phrase: freq / 3,
                concept_size: 2,
                number_of_chars: s.len() as u32,
                subconcepts: 0,
                high_level_type: 4,
                wiki_word_count: *wiki,
            },
        )
    })
    .collect();

    // ---- Offline: freeze the first snapshot; the service starts on it.
    let handle = ServiceHandle::with_adjuster(
        rebuild_snapshot(&concepts, 1.0),
        OnlineCtrAdjuster::new(OnlineConfig {
            gain: 3.0,
            max_adjust: 8.0,
            ..OnlineConfig::default()
        }),
    );
    println!("serving snapshot epoch {}", handle.epoch());

    let candidates: Vec<String> = concepts.iter().map(|(s, _)| s.clone()).collect();
    let story = "The stadium roared as the final goal settled the group standings \
                 and the qualifying fixture list for the cup.";

    println!("\nserving loop (CTR feedback arrives after each batch):");
    for batch in 0..6 {
        let ranked = handle.rank(story, &candidates);
        println!(
            "batch {batch} (epoch {}): {}",
            handle.epoch(),
            ranked
                .iter()
                .map(|r| format!("{} ({:.2})", r.surface, r.score))
                .collect::<Vec<_>>()
                .join("  >  ")
        );
        // Feedback: "qualifying rounds" (statically least interesting)
        // suddenly draws heavy clicks — a knockout upset.
        for surface in &candidates {
            let (views, clicks) = if surface == "qualifying rounds" && batch >= 1 {
                (20_000, 3_000)
            } else if surface == "world cup" {
                (20_000, 700)
            } else {
                (20_000, 260)
            };
            handle.record_feedback(surface, views, clicks);
        }
        // Mid-traffic, the offline pipeline finishes a rebuild with
        // fresher keyword data. Publishing is one atomic swap: readers
        // never pause, and the accumulated CTR state carries over.
        if batch == 3 {
            let epoch = handle.publish(rebuild_snapshot(&concepts, 1.25));
            println!("  >> published rebuilt snapshot, epoch {epoch}");
        }
    }
    let boost = handle.adjustment("qualifying rounds");
    println!(
        "\nadjustments now: world cup {:+.2}, transfer rumours {:+.2}, qualifying rounds {:+.2}",
        handle.adjustment("world cup"),
        handle.adjustment("transfer rumours"),
        boost,
    );
    assert!(
        boost > 0.0,
        "the upset should still be boosted after the swap"
    );

    // ---- Persist the whole service (snapshot + online CTR state) and
    // reload it, as a restarted serving process would.
    let artifact = std::env::temp_dir().join("ctxrank_example_artifact");
    save_service(&handle, &artifact).expect("persist the serving state");
    println!("\nservice persisted to {}", artifact.display());

    let restored = load_service(&artifact).expect("reload the serving state");
    assert_eq!(restored.epoch(), handle.epoch(), "epoch survives restart");
    assert!(
        (restored.adjustment("qualifying rounds") - boost).abs() < 1e-12,
        "online CTR state survives restart"
    );
    let ranked = restored.rank(story, &candidates);
    println!(
        "after restart (epoch {}): {}",
        restored.epoch(),
        ranked
            .iter()
            .map(|r| format!("{} ({:.2})", r.surface, r.score))
            .collect::<Vec<_>>()
            .join("  >  ")
    );

    std::fs::remove_dir_all(&artifact).ok();
}
